/// Serving-layer tests ("pilot-serve"): the canonical AIG hash that keys
/// the verdict cache, revalidate-before-serve cache semantics (a corrupted
/// certificate must surface as a miss, never as a served verdict), the
/// deterministic shard partition and its merge-equivalence, the
/// history-driven advisor, the warm-rerun acceptance bar (every case a
/// revalidated hit, an order of magnitude faster than solving), and an
/// in-process Unix-socket server round trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "aig/aiger_io.hpp"
#include "cert/certificate.hpp"
#include "check/checker.hpp"
#include "check/runner.hpp"
#include "circuits/families.hpp"
#include "circuits/suite.hpp"
#include "corpus/corpus.hpp"
#include "corpus/results_db.hpp"
#include "serve/advisor.hpp"
#include "serve/server.hpp"
#include "serve/verdict_cache.hpp"
#include "ts/transition_system.hpp"
#include "util/timer.hpp"

namespace pilot {
namespace {

using serve::Advice;
using serve::Advisor;
using serve::CacheEntry;
using serve::VerdictCache;

// ----- canonical hash --------------------------------------------------------

// One hand-written circuit in three textual disguises: bare, and with a
// symbol table plus comment section appended.  Parsed structure is
// identical, so the canonical hash must collide even though the raw bytes
// (the parse-cache key) differ.
constexpr const char* kPlainAag = "aag 5 1 1 1 2\n2\n4 10\n4\n6 2 4\n10 6 6\n";
constexpr const char* kDecoratedAag =
    "aag 5 1 1 1 2\n2\n4 10\n4\n6 2 4\n10 6 6\n"
    "i0 request\nl0 grant\no0 bad\n"
    "c\nhand-rewritten copy; structure unchanged\n";
// Same shape, one gate's fanin negated — a single structural edit.
constexpr const char* kEditedAag = "aag 5 1 1 1 2\n2\n4 10\n4\n6 2 4\n10 6 7\n";

TEST(CanonicalHash, CommentAndSymbolVariantsCollide) {
  const aig::Aig plain = aig::read_aiger_string(kPlainAag);
  const aig::Aig decorated = aig::read_aiger_string(kDecoratedAag);
  EXPECT_EQ(aig::canonical_hash(plain), aig::canonical_hash(decorated));
  EXPECT_EQ(aig::canonical_hash_hex(plain),
            aig::canonical_hash_hex(decorated));
  EXPECT_EQ(aig::canonical_hash_hex(plain).size(), 16u);
}

TEST(CanonicalHash, SingleGateEditChangesHash) {
  const aig::Aig plain = aig::read_aiger_string(kPlainAag);
  const aig::Aig edited = aig::read_aiger_string(kEditedAag);
  EXPECT_NE(aig::canonical_hash(plain), aig::canonical_hash(edited));
}

TEST(CanonicalHash, RoundTripThroughAigerTextIsStable) {
  const auto cc = circuits::token_ring_safe(5);
  const aig::Aig reread =
      aig::read_aiger_string(aig::to_aiger_ascii(cc.aig));
  EXPECT_EQ(aig::canonical_hash(cc.aig), aig::canonical_hash(reread));
}

TEST(CanonicalHash, DistinguishesSuiteCircuits) {
  std::set<std::uint64_t> hashes;
  const auto cases = circuits::make_suite(circuits::SuiteSize::kTiny);
  for (const auto& cc : cases) hashes.insert(aig::canonical_hash(cc.aig));
  EXPECT_EQ(hashes.size(), cases.size());
}

// ----- verdict cache ---------------------------------------------------------

/// Solves `cc` and returns a fully-populated cache entry whose certificate
/// independently re-checks.
CacheEntry solved_entry(const circuits::CircuitCase& cc,
                        const std::string& spec = "ic3-ctg") {
  check::CheckOptions co;
  co.engine_spec = spec;
  co.budget_ms = 60000;
  const check::CheckResult r = check::check_aig(cc.aig, co);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig, 0);
  std::string why;
  const std::optional<cert::Certificate> c =
      cert::from_verdict(ts, r.verdict, r.invariant, r.trace, r.kind_k,
                         r.kind_simple_path, /*property_index=*/0, &why);
  EXPECT_TRUE(c.has_value()) << why;
  CacheEntry e;
  e.hash = aig::canonical_hash_hex(cc.aig);
  e.verdict = r.verdict;
  e.engine = spec;
  e.seconds = r.seconds;
  e.frames = r.frames;
  e.cert_text = cert::to_text(*c);
  e.case_name = cc.name;
  e.timestamp = "2026-01-01T00:00:00Z";
  return e;
}

TEST(VerdictCache, HitIsBitIdenticalAndCountsOneRevalidation) {
  const auto cc = circuits::token_ring_safe(4);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig, 0);
  const CacheEntry stored = solved_entry(cc);

  VerdictCache cache;
  ASSERT_TRUE(cache.store(stored));
  const std::optional<CacheEntry> hit = cache.lookup(stored.hash, ts);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->verdict, stored.verdict);
  EXPECT_EQ(hit->engine, stored.engine);
  EXPECT_EQ(hit->frames, stored.frames);
  EXPECT_EQ(hit->cert_text, stored.cert_text);  // bit-identical certificate
  EXPECT_EQ(hit->case_name, stored.case_name);

  EXPECT_EQ(cache.stats().lookups.load(), 1u);
  EXPECT_EQ(cache.stats().hits.load(), 1u);
  EXPECT_EQ(cache.stats().misses.load(), 0u);
  EXPECT_EQ(cache.stats().revalidations.load(), 1u);
  EXPECT_EQ(cache.stats().revalidation_failures.load(), 0u);

  EXPECT_FALSE(cache.lookup("0000000000000000", ts).has_value());
  EXPECT_EQ(cache.stats().misses.load(), 1u);
}

TEST(VerdictCache, CorruptedCertificateIsAMissAndNeverServed) {
  const auto safe = circuits::token_ring_safe(4);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(safe.aig, 0);

  // A poisoned entry: the safe circuit's hash, but garbage certificate
  // text (a truncated/corrupted cache file, or a hash collision).
  CacheEntry poisoned = solved_entry(safe);
  poisoned.cert_text = "pilot-cert v1\nkind invariant\ncorrupted beyond";

  VerdictCache cache;
  ASSERT_TRUE(cache.store(poisoned));
  EXPECT_FALSE(cache.lookup(poisoned.hash, ts).has_value());
  EXPECT_EQ(cache.stats().hits.load(), 0u);
  EXPECT_EQ(cache.stats().misses.load(), 1u);
  EXPECT_EQ(cache.stats().revalidation_failures.load(), 1u);
  // The poisoned entry was dropped: the retry is a plain miss with no
  // second revalidation attempt.
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(poisoned.hash, ts).has_value());
  EXPECT_EQ(cache.stats().revalidations.load(), 1u);
  EXPECT_EQ(cache.stats().revalidation_failures.load(), 1u);
}

TEST(VerdictCache, WrongCircuitsCertificateFailsRevalidation) {
  // A *valid* certificate for circuit A stored under circuit B's hash (the
  // worst-case canonical-hash collision): revalidation against B's
  // transition system must reject it.
  const auto a = circuits::token_ring_safe(4);
  const auto b = circuits::counter_wrap_safe(5, 9, 20);
  const ts::TransitionSystem ts_b = ts::TransitionSystem::from_aig(b.aig, 0);
  CacheEntry crossed = solved_entry(a);
  crossed.hash = aig::canonical_hash_hex(b.aig);

  VerdictCache cache;
  ASSERT_TRUE(cache.store(crossed));
  EXPECT_FALSE(cache.lookup(crossed.hash, ts_b).has_value());
  EXPECT_EQ(cache.stats().revalidation_failures.load(), 1u);
}

TEST(VerdictCache, RejectsUnknownVerdictsAndEmptyFields) {
  VerdictCache cache;
  CacheEntry e;
  e.hash = "abc";
  e.cert_text = "x";
  e.verdict = ic3::Verdict::kUnknown;
  EXPECT_FALSE(cache.store(e));  // UNKNOWN is not cacheable
  e.verdict = ic3::Verdict::kSafe;
  e.cert_text.clear();
  EXPECT_FALSE(cache.store(e));  // no certificate, nothing to revalidate
  e.cert_text = "x";
  e.hash.clear();
  EXPECT_FALSE(cache.store(e));  // no key
  EXPECT_EQ(cache.size(), 0u);
}

TEST(VerdictCache, FileBackedEntriesSurviveReload) {
  const std::string path = testing::TempDir() + "pilot_cache_reload.jsonl";
  std::remove(path.c_str());
  const auto cc = circuits::token_ring_safe(4);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig, 0);
  const CacheEntry stored = solved_entry(cc);
  {
    VerdictCache cache(path);
    EXPECT_EQ(cache.size(), 0u);  // missing file = empty cache
    ASSERT_TRUE(cache.store(stored));
  }
  VerdictCache reloaded(path);
  EXPECT_EQ(reloaded.size(), 1u);
  const std::optional<CacheEntry> hit = reloaded.lookup(stored.hash, ts);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->verdict, stored.verdict);
  EXPECT_EQ(hit->cert_text, stored.cert_text);
  std::remove(path.c_str());
}

TEST(VerdictCache, EntryJsonRoundTrips) {
  CacheEntry e;
  e.hash = "13f5ebb741c39d12";
  e.verdict = ic3::Verdict::kUnsafe;
  e.engine = "bmc";
  e.seconds = 0.125;
  e.frames = 7;
  e.cert_text = "pilot-cert v1\nkind witness\n...";
  e.case_name = "counter10";
  e.timestamp = "2026-01-01T00:00:00Z";
  const CacheEntry back =
      serve::cache_entry_from_json_line(serve::cache_entry_to_json(e));
  EXPECT_EQ(back.hash, e.hash);
  EXPECT_EQ(back.verdict, e.verdict);
  EXPECT_EQ(back.engine, e.engine);
  EXPECT_DOUBLE_EQ(back.seconds, e.seconds);
  EXPECT_EQ(back.frames, e.frames);
  EXPECT_EQ(back.cert_text, e.cert_text);
  EXPECT_EQ(back.case_name, e.case_name);
  EXPECT_EQ(back.timestamp, e.timestamp);
}

// ----- sharding --------------------------------------------------------------

TEST(ShardSpec, ParsesAndRejects) {
  const corpus::ShardSpec s = corpus::parse_shard_spec("2/5");
  EXPECT_EQ(s.index, 2u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_THROW((void)corpus::parse_shard_spec(""), std::invalid_argument);
  EXPECT_THROW((void)corpus::parse_shard_spec("3"), std::invalid_argument);
  EXPECT_THROW((void)corpus::parse_shard_spec("5/5"), std::invalid_argument);
  EXPECT_THROW((void)corpus::parse_shard_spec("0/0"), std::invalid_argument);
  EXPECT_THROW((void)corpus::parse_shard_spec("a/b"), std::invalid_argument);
}

TEST(ShardCases, PartitionIsDisjointCompleteAndOrderIndependent) {
  const std::vector<corpus::Case> cases =
      corpus::suite_cases(circuits::SuiteSize::kTiny);
  ASSERT_FALSE(cases.empty());
  for (const std::size_t n : {2u, 3u, 5u}) {
    std::multiset<std::string> reassembled;
    std::set<std::string> seen;
    for (std::size_t i = 0; i < n; ++i) {
      const std::vector<corpus::Case> shard =
          corpus::shard_cases(cases, {i, n});
      for (const corpus::Case& c : shard) {
        reassembled.insert(c.name);
        EXPECT_TRUE(seen.insert(c.name).second)
            << c.name << " landed in two shards (n=" << n << ")";
      }
    }
    EXPECT_EQ(reassembled.size(), cases.size()) << "n=" << n;
  }

  // Membership is keyed by the case, not its position: a reversed corpus
  // shards identically.
  std::vector<corpus::Case> reversed(cases.rbegin(), cases.rend());
  const auto names = [](const std::vector<corpus::Case>& v) {
    std::set<std::string> out;
    for (const corpus::Case& c : v) out.insert(c.name);
    return out;
  };
  EXPECT_EQ(names(corpus::shard_cases(cases, {0, 3})),
            names(corpus::shard_cases(reversed, {0, 3})));
}

TEST(ShardCases, MergedShardCampaignMatchesUnsharded) {
  const std::vector<corpus::Case> cases =
      corpus::suite_cases(circuits::SuiteSize::kTiny);
  check::RunMatrixOptions mo;
  mo.budget_ms = 60000;
  mo.jobs = 2;
  mo.strict = false;
  const std::vector<check::RunRecord> all =
      check::run_matrix(cases, {"ic3-ctg"}, mo);

  corpus::ResultsDb merged;
  const corpus::RunContext ctx;
  for (const std::size_t i : {0u, 1u}) {
    const std::vector<check::RunRecord> part = check::run_matrix(
        corpus::shard_cases(cases, {i, 2}), {"ic3-ctg"}, mo);
    for (const check::RunRecord& r : part) merged.add({r, ctx});
  }
  merged.dedup();
  ASSERT_EQ(merged.rows().size(), all.size());
  std::map<std::string, ic3::Verdict> by_name;
  for (const corpus::RunRow& row : merged.rows()) {
    by_name[row.record.case_name] = row.record.verdict;
  }
  for (const check::RunRecord& r : all) {
    ASSERT_TRUE(by_name.count(r.case_name)) << r.case_name;
    EXPECT_EQ(by_name[r.case_name], r.verdict) << r.case_name;
  }
}

// ----- advisor ---------------------------------------------------------------

corpus::RunRow history_row(const std::string& name, const std::string& hash,
                           const std::string& engine, double seconds,
                           std::size_t inputs, std::size_t latches,
                           std::size_t ands) {
  corpus::RunRow row;
  row.record.case_name = name;
  row.record.engine = engine;
  row.record.verdict = ic3::Verdict::kSafe;
  row.record.solved = true;
  row.record.seconds = seconds;
  row.record.content_hash = hash;
  row.record.num_inputs = inputs;
  row.record.num_latches = latches;
  row.record.num_ands = ands;
  return row;
}

TEST(Advisor, ExactHashBeatsNearestNeighbour) {
  corpus::ResultsDb db;
  db.add(history_row("ring", "aaaa", "ic3-ctg", 0.5, 1, 8, 30));
  db.add(history_row("ring-again", "aaaa", "bmc", 0.1, 1, 8, 30));
  db.add(history_row("counter", "bbbb", "kind", 0.2, 2, 10, 60));
  const Advisor adv = Advisor::from_db(db);
  EXPECT_EQ(adv.size(), 3u);

  // Exact tier: the *fastest* solver of that hash wins.
  const std::optional<Advice> exact = adv.advise("aaaa", 1, 8, 30);
  ASSERT_TRUE(exact.has_value());
  EXPECT_TRUE(exact->exact);
  EXPECT_EQ(exact->engine_spec, "bmc");
  EXPECT_EQ(exact->budget_ms, Advisor::scaled_budget_ms(0.1));

  // Unknown hash: nearest neighbour by shape.
  const std::optional<Advice> near = adv.advise("cccc", 2, 10, 61);
  ASSERT_TRUE(near.has_value());
  EXPECT_FALSE(near->exact);
  EXPECT_EQ(near->engine_spec, "kind");
  EXPECT_EQ(near->source_case, "counter");
}

TEST(Advisor, ScaledBudgetHasAFloorAndAMargin) {
  EXPECT_EQ(Advisor::scaled_budget_ms(0.0), 100);     // floor
  EXPECT_EQ(Advisor::scaled_budget_ms(0.00001), 100); // floor
  EXPECT_GE(Advisor::scaled_budget_ms(2.0), 3000);    // ~1.5× margin
}

TEST(Advisor, EmptyHistoryAdvisesNothing) {
  const Advisor adv;
  EXPECT_FALSE(adv.advise("aaaa", 1, 2, 3).has_value());
}

// ----- warm-rerun acceptance bar ---------------------------------------------

// A second campaign over the same corpus with a warm cache must serve every
// case as a revalidated hit, return identical verdicts, and — certificate
// re-checking being an order of magnitude cheaper than IC3 solving on
// non-trivial circuits — finish at least 10× faster than the cold run.
TEST(VerdictCache, WarmRerunAllHitsIdenticalVerdictsTenTimesFaster) {
  std::vector<corpus::Case> cases;
  cases.push_back(corpus::from_circuit(circuits::token_ring_safe(16)));
  cases.push_back(corpus::from_circuit(circuits::token_ring_safe(18)));
  cases.push_back(corpus::from_circuit(circuits::token_ring_safe(20)));
  cases.push_back(corpus::from_circuit(circuits::fifo_safe(6, 60)));

  VerdictCache cache;
  check::RunMatrixOptions mo;
  mo.budget_ms = 120000;
  mo.jobs = 1;  // sequential on both sides keeps the timing comparable
  mo.strict = false;
  mo.cache = &cache;

  Timer cold_timer;
  const std::vector<check::RunRecord> cold =
      check::run_matrix(cases, {"ic3-ctg"}, mo);
  const double cold_seconds = cold_timer.seconds();
  for (const check::RunRecord& r : cold) {
    EXPECT_EQ(r.cache_status, "miss") << r.case_name;
    EXPECT_TRUE(r.solved) << r.case_name;
  }
  ASSERT_EQ(cache.size(), cases.size());

  Timer warm_timer;
  const std::vector<check::RunRecord> warm =
      check::run_matrix(cases, {"ic3-ctg"}, mo);
  const double warm_seconds = warm_timer.seconds();
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_EQ(warm[i].cache_status, "hit") << warm[i].case_name;
    EXPECT_EQ(warm[i].verdict, cold[i].verdict) << warm[i].case_name;
    EXPECT_EQ(warm[i].frames, cold[i].frames) << warm[i].case_name;
  }
  EXPECT_EQ(cache.stats().hits.load(), cases.size());
  EXPECT_EQ(cache.stats().revalidation_failures.load(), 0u);
  EXPECT_LE(warm_seconds * 10.0, cold_seconds)
      << "warm=" << warm_seconds << "s cold=" << cold_seconds
      << "s — the warm rerun lost its 10× bar";
}

// ----- server round trip -----------------------------------------------------

TEST(Server, RoundTripCachesSecondRequestAndDrains) {
  const std::string socket_path = testing::TempDir() + "pilot_serve_test.sock";
  VerdictCache cache;
  serve::ServerOptions so;
  so.socket_path = socket_path;
  so.engine_spec = "ic3-ctg";
  so.budget_ms = 60000;
  so.queue_capacity = 4;
  so.workers = 2;
  so.cache = &cache;
  serve::Server server(std::move(so));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  const std::string aiger =
      aig::to_aiger_ascii(circuits::token_ring_safe(4).aig);
  const std::string request = serve::make_check_request(aiger);

  std::optional<std::string> resp =
      serve::client_request(socket_path, "ping\n", &error);
  ASSERT_TRUE(resp.has_value()) << error;
  EXPECT_EQ(*resp, "ok pong\n");

  resp = serve::client_request(socket_path, request, &error);
  ASSERT_TRUE(resp.has_value()) << error;
  EXPECT_NE(resp->find("ok verdict=SAFE"), std::string::npos) << *resp;
  EXPECT_NE(resp->find("cached=0"), std::string::npos) << *resp;

  resp = serve::client_request(socket_path, request, &error);
  ASSERT_TRUE(resp.has_value()) << error;
  EXPECT_NE(resp->find("ok verdict=SAFE"), std::string::npos) << *resp;
  EXPECT_NE(resp->find("cached=1"), std::string::npos) << *resp;

  resp = serve::client_request(socket_path, "stats\n", &error);
  ASSERT_TRUE(resp.has_value()) << error;
  EXPECT_NE(resp->find("hits=1"), std::string::npos) << *resp;

  resp = serve::client_request(socket_path, "check 3\nxyz", &error);
  ASSERT_TRUE(resp.has_value()) << error;
  EXPECT_EQ(resp->rfind("error", 0), 0u) << *resp;  // malformed AIGER

  resp = serve::client_request(socket_path, "stop\n", &error);
  ASSERT_TRUE(resp.has_value()) << error;
  EXPECT_EQ(*resp, "ok draining\n");
  server.wait();
  EXPECT_EQ(server.stats().served, 2u);  // the two good checks
  EXPECT_EQ(server.stats().errors, 1u);  // the malformed AIGER
  EXPECT_EQ(cache.stats().hits.load(), 1u);
  EXPECT_EQ(cache.stats().revalidation_failures.load(), 0u);
}

}  // namespace
}  // namespace pilot
