#include "check/checker.hpp"

#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "engine/backend.hpp"
#include "obs/progress.hpp"

namespace pilot::check {

const char* to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kIc3Down: return "ic3-down";
    case EngineKind::kIc3DownPl: return "ic3-down-pl";
    case EngineKind::kIc3Ctg: return "ic3-ctg";
    case EngineKind::kIc3CtgPl: return "ic3-ctg-pl";
    case EngineKind::kIc3Cav23: return "ic3-cav23";
    case EngineKind::kPdr: return "pdr";
    case EngineKind::kBmc: return "bmc";
    case EngineKind::kKinduction: return "kind";
    case EngineKind::kPortfolio: return "portfolio";
  }
  return "?";
}

EngineKind engine_kind_from_string(const std::string& name) {
  for (const EngineKind k :
       {EngineKind::kIc3Down, EngineKind::kIc3DownPl, EngineKind::kIc3Ctg,
        EngineKind::kIc3CtgPl, EngineKind::kIc3Cav23, EngineKind::kPdr,
        EngineKind::kBmc, EngineKind::kKinduction, EngineKind::kPortfolio}) {
    if (name == to_string(k)) return k;
  }
  throw std::invalid_argument("unknown engine '" + name + "'");
}

const std::vector<std::string>& paper_configurations() {
  static const std::vector<std::string> kConfigs{
      "ic3-down", "ic3-down-pl", "ic3-ctg", "ic3-ctg-pl", "ic3-cav23", "pdr",
  };
  return kConfigs;
}

ic3::Config config_for(EngineKind kind, std::uint64_t seed) {
  return engine::ic3_config_for(to_string(kind), seed);
}

namespace {

/// Certifies the certificate (when present and requested) and folds an
/// EngineResult into the CheckResult shape shared by every engine.
CheckResult certify(const ts::TransitionSystem& ts, engine::EngineResult r,
                    const CheckOptions& options) {
  CheckResult out;
  out.verdict = r.verdict;
  out.seconds = r.seconds;
  out.stats = r.stats;
  out.frames = r.frames;
  if (options.verify_witness) {
    if (r.verdict == ic3::Verdict::kUnsafe && r.trace.has_value()) {
      const ic3::CheckOutcome c = ic3::check_trace(ts, *r.trace);
      out.witness_checked = c.ok;
      out.witness_error = c.reason;
    } else if (r.verdict == ic3::Verdict::kSafe && r.invariant.has_value()) {
      const ic3::CheckOutcome c = ic3::check_invariant(ts, *r.invariant);
      out.witness_checked = c.ok;
      out.witness_error = c.reason;
    }
  }
  out.trace = std::move(r.trace);
  out.invariant = std::move(r.invariant);
  out.kind_k = r.kind_k;
  out.kind_simple_path = r.kind_simple_path;
  return out;
}

[[nodiscard]] Deadline deadline_for(const CheckOptions& options) {
  return options.budget_ms > 0 ? Deadline::in_milliseconds(options.budget_ms)
                               : Deadline{};
}

/// The `--progress` heartbeat for one check call, when requested.  The
/// monitor thread starts immediately; engines register their channels
/// lazily (add_channel is safe while the monitor runs) and the destructor
/// joins the thread before the check returns.
[[nodiscard]] std::unique_ptr<obs::ProgressMonitor> monitor_for(
    const CheckOptions& options) {
  if (options.progress_interval <= 0.0) return nullptr;
  auto monitor = std::make_unique<obs::ProgressMonitor>(
      options.progress_interval);
  monitor->start();
  return monitor;
}

/// `backends` empty = race the default mix.
CheckResult run_portfolio_backends(const ts::TransitionSystem& ts,
                                   std::vector<std::string> backends,
                                   const CheckOptions& options,
                                   bool share_lemmas) {
  const std::unique_ptr<obs::ProgressMonitor> monitor = monitor_for(options);
  engine::PortfolioOptions po;
  po.progress = monitor.get();
  po.backends = std::move(backends);
  po.seed = options.seed;
  po.gen_spec = options.gen_spec;
  po.lift_sim = options.lift_sim;
  po.gen_ternary_filter = options.gen_ternary_filter;
  po.sat_inprocess = options.sat_inprocess;
  po.gen_batch = options.gen_batch;
  po.gen_batch_adaptive = options.gen_batch_adaptive;
  po.share_lemmas = share_lemmas;
  // The certificate gate rides the verify-witness switch: every definitive
  // verdict must re-check under the independent checker before it can win
  // the race; failures quarantine the backend instead of cancelling.
  po.certify = options.verify_witness;
  po.property_index = options.property_index;
  // ic3_overrides is deliberately NOT forwarded: one override applied to
  // every IC3-family backend would collapse the race into identical
  // configurations.  Overrides apply to single-engine specs only.
  // (gen_spec IS forwarded: the backends still differ in their base
  // configurations, and a uniform strategy override is the point of
  // `--gen` — e.g. racing every config under "dynamic".)
  engine::PortfolioResult pr =
      engine::run_portfolio(ts, po, deadline_for(options), options.cancel);
  CheckResult out = certify(ts, std::move(pr.result), options);
  out.winner = std::move(pr.winner);
  out.backend_timings = std::move(pr.timings);
  out.exchange = pr.exchange;
  return out;
}

}  // namespace

CheckResult check_ts(const ts::TransitionSystem& ts,
                     const CheckOptions& options) {
  const std::string& spec = options.engine_spec;
  // "portfolio[:a+b+c]" races without lemma exchange, "portfolio-x[:…]"
  // with it; CheckOptions::share_lemmas turns it on for either form.
  if (std::optional<engine::PortfolioSpec> ps =
          engine::match_portfolio_spec(spec)) {
    return run_portfolio_backends(ts, std::move(ps->backends), options,
                                  ps->exchange || options.share_lemmas);
  }

  const std::unique_ptr<obs::ProgressMonitor> monitor = monitor_for(options);
  engine::BackendContext ctx;
  if (monitor != nullptr) ctx.progress = monitor->add_channel(spec);
  ctx.seed = options.seed;
  ctx.ic3_overrides = options.ic3_overrides;
  ctx.gen_spec = options.gen_spec;
  ctx.lift_sim = options.lift_sim;
  ctx.gen_ternary_filter = options.gen_ternary_filter;
  ctx.sat_inprocess = options.sat_inprocess;
  ctx.gen_batch = options.gen_batch;
  ctx.gen_batch_adaptive = options.gen_batch_adaptive;
  const std::unique_ptr<engine::Backend> backend =
      engine::make_backend(spec, ts, ctx);
  engine::EngineResult r =
      backend->check(deadline_for(options), options.cancel);
  return certify(ts, std::move(r), options);
}

CheckResult check_aig(const aig::Aig& aig, const CheckOptions& options) {
  const ts::TransitionSystem ts =
      ts::TransitionSystem::from_aig(aig, options.property_index);
  return check_ts(ts, options);
}

}  // namespace pilot::check
