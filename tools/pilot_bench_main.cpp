/// \file pilot_bench_main.cpp
/// `pilot-bench` — the benchmark-campaign runner over the corpus subsystem:
/// ingest an AIGER corpus (or a built-in suite), run a (case × engine)
/// matrix into the append-only JSONL results database, and diff campaigns
/// against a baseline for CI regression gating.
///
///   pilot-bench run --corpus <manifest|dir|suite:SIZE> --engines a+b
///       [--budget-ms N] [--jobs N] [--out runs.jsonl]
///   pilot-bench diff <baseline.jsonl> [<current.jsonl>]
///       [--time-threshold R] [--min-seconds S] [--fail-on-time]
///   pilot-bench bench-diff <old.json> <new.json>
///       [--threshold PCT] [--min-ns N] [--markdown] [--fail-on-regress]
///   pilot-bench report <runs.jsonl>
///   pilot-bench make-manifest --suite SIZE --out DIR [--format aag|aig]
///   pilot-bench list --corpus <manifest|dir|suite:SIZE>
///   pilot-bench validate-json <file>...
///
/// `diff` with one file re-runs the campaign recorded in the baseline rows
/// (same corpus, engines, budget, seed) and compares — the single command
/// CI calls.  Newly-unsolved cases and verdict flips (a soundness alarm)
/// fail the diff; time regressions beyond the threshold are reported, and
/// fail only with --fail-on-time.
///
/// `bench-diff` compares two google-benchmark JSON artifacts (the
/// `micro_ops.json` the bench-micro CI job uploads) and flags per-benchmark
/// slowdowns beyond --threshold percent.  Advisory by default (exit 0);
/// --fail-on-regress gates; --markdown emits a $GITHUB_STEP_SUMMARY table.
///
/// Exit codes: 0 = ok, 1 = regression / expectation mismatch, 3 = usage or
/// I/O error.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include <fstream>
#include <sstream>

#include "check/runner.hpp"
#include "corpus/bench_diff.hpp"
#include "engine/portfolio.hpp"
#include "corpus/corpus.hpp"
#include "corpus/manifest.hpp"
#include "corpus/report.hpp"
#include "corpus/results_db.hpp"
#include "util/json.hpp"
#include "util/options.hpp"

using namespace pilot;

namespace {

/// Splits an `--engines` list.  ',' is the primary separator (needed when a
/// portfolio spec itself contains '+'); a list without ',' splits on '+'.
/// A lone "portfolio:…" / "portfolio-x:…" spec (engine::match_portfolio_spec
/// is the one grammar) is passed through whole, and mixing a portfolio spec
/// into a '+'-separated list is rejected as ambiguous —
/// "portfolio:bmc+kind" must not silently become ["portfolio:bmc", "kind"].
std::vector<std::string> split_engines(const std::string& text) {
  const bool has_portfolio_spec =
      text.find("portfolio:") != std::string::npos ||
      text.find("portfolio-x:") != std::string::npos;
  if (text.find(',') == std::string::npos && has_portfolio_spec) {
    if (engine::match_portfolio_spec(text).has_value()) return {text};
    throw std::invalid_argument(
        "--engines: a portfolio spec inside a '+'-separated list is "
        "ambiguous; separate engines with ',' instead");
  }
  const char sep = text.find(',') != std::string::npos ? ',' : '+';
  std::vector<std::string> out;
  std::string current;
  for (const char c : text) {
    if (c == sep) {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(current);
  if (out.empty()) {
    throw std::invalid_argument("--engines: empty engine list");
  }
  return out;
}

int report_campaign(const std::vector<check::RunRecord>& records,
                    const std::string& out_path) {
  for (const check::RunRecord& r : records) {
    if (!r.error.empty()) {
      std::fprintf(stderr, "[pilot-bench] %s: ERROR %s\n",
                   r.case_name.c_str(), r.error.c_str());
    } else if (corpus::record_mismatch(r)) {
      std::fprintf(stderr,
                   "[pilot-bench] MISMATCH %s × %s: got %s, expected %s\n",
                   r.case_name.c_str(), r.engine.c_str(),
                   ic3::to_string(r.verdict), corpus::to_string(r.expected));
    }
  }
  const corpus::CampaignSummary s = corpus::summarize_campaign(records);
  std::fprintf(stderr,
               "[pilot-bench] %zu records: %zu solved, %zu unknown, "
               "%zu mismatches, %zu errors%s%s\n",
               s.total, s.solved, s.unknown, s.mismatches, s.errors,
               out_path.empty() ? "" : " — rows appended to ",
               out_path.c_str());
  return s.exit_code();
}

/// Runs one campaign and appends its rows to `writer`.
std::vector<check::RunRecord> run_campaign(
    const std::string& corpus_spec, const std::vector<std::string>& engines,
    const check::RunMatrixOptions& options,
    corpus::ResultsDb::Writer* writer, corpus::ResultsDb* db_out) {
  const std::vector<corpus::Case> cases = corpus::resolve_corpus(corpus_spec);
  if (cases.empty()) {
    throw std::runtime_error("corpus '" + corpus_spec + "' has no cases");
  }
  std::fprintf(stderr, "[pilot-bench] %zu cases × %zu engines, %lld ms "
               "budget\n",
               cases.size(), engines.size(),
               static_cast<long long>(options.budget_ms));
  const std::vector<check::RunRecord> records =
      check::run_matrix(cases, engines, options);

  const corpus::RunContext context = corpus::make_run_context(
      corpus_spec, options.budget_ms, options.seed, options.gen_spec);
  for (const check::RunRecord& r : records) {
    corpus::RunRow row{r, context};
    if (writer != nullptr) writer->append(row);
    if (db_out != nullptr) db_out->add(std::move(row));
  }
  return records;
}

int cmd_run(int argc, const char* const* argv) {
  std::string corpus_spec;
  std::string engines_text = "ic3-ctg-pl";
  std::string gen_spec;
  std::int64_t budget_ms = 2000;
  std::int64_t jobs = 0;
  std::int64_t seed = 0;
  std::string out_path;
  std::string lift_sim;
  std::string ternary_filter;
  std::string sat_inprocess;
  std::int64_t gen_batch = -1;
  bool truncate = false;
  bool verify_witness = true;
  OptionParser parser(
      "pilot-bench run — run a (corpus × engines) campaign into a results "
      "db");
  parser.add_string("corpus", &corpus_spec,
                    "manifest.json, a directory of .aig/.aag files, or "
                    "suite:tiny|quick|full");
  parser.add_string("engines", &engines_text,
                    "engine specs, '+'-separated (use ',' when a portfolio "
                    "spec contains '+')");
  parser.add_string("gen", &gen_spec,
                    "generalization-strategy override for the IC3-family "
                    "engines (down|ctg|cav23|predict|dynamic[:w,t])");
  parser.add_choice("lift-sim", &lift_sim, {"packed", "byte"},
                    "ternary-simulation backend for the lifter (default "
                    "packed; byte for A/B)");
  parser.add_choice("gen-ternary-filter", &ternary_filter, {"on", "off"},
                    "ternary drop-filter in the MIC core (default on; off "
                    "for A/B)");
  parser.add_choice("sat-inprocess", &sat_inprocess, {"on", "off"},
                    "SAT inprocessing: subsumption/vivification (IC3), "
                    "probing/SCC collapsing (BMC/k-ind); default on, off "
                    "for A/B");
  parser.add_int("gen-batch", &gen_batch,
                 "MIC candidate drops answered per SAT solve (1 = "
                 "sequential; default 4)");
  parser.add_int("budget-ms", &budget_ms, "per-case wall-clock budget");
  parser.add_int("jobs", &jobs, "worker threads (0 = hardware concurrency)");
  parser.add_int("seed", &seed, "engine seed");
  parser.add_string("out", &out_path,
                    "append JSONL rows here (default: stdout)");
  parser.add_flag("truncate", &truncate,
                  "start --out fresh instead of appending");
  parser.add_flag("verify-witness", &verify_witness,
                  "re-check produced certificates (default on)");
  if (!parser.parse(argc, argv)) return 3;
  if (corpus_spec.empty()) {
    std::fprintf(stderr, "pilot-bench run: --corpus is required\n");
    return 3;
  }

  check::RunMatrixOptions options;
  options.budget_ms = budget_ms;
  options.gen_spec = gen_spec;
  if (!lift_sim.empty()) {
    options.lift_sim = lift_sim == "byte" ? ic3::Config::LiftSim::kByte
                                          : ic3::Config::LiftSim::kPacked;
  }
  if (!ternary_filter.empty()) {
    options.gen_ternary_filter = ternary_filter == "on";
  }
  if (!sat_inprocess.empty()) options.sat_inprocess = sat_inprocess == "on";
  if (gen_batch == 0 || gen_batch < -1) {
    std::fprintf(stderr,
                 "pilot-bench run: --gen-batch must be >= 1 (1 = "
                 "sequential)\n");
    return 3;
  }
  if (gen_batch >= 1) options.gen_batch = static_cast<int>(gen_batch);
  options.jobs = static_cast<std::size_t>(jobs);
  options.seed = static_cast<std::uint64_t>(seed);
  options.verify_witness = verify_witness;
  options.strict = false;  // mismatches surface via the exit code
  corpus::ResultsDb::Writer writer(out_path, truncate);
  const std::vector<check::RunRecord> records = run_campaign(
      corpus_spec, split_engines(engines_text), options, &writer, nullptr);
  return report_campaign(records, out_path);
}

int cmd_diff(int argc, const char* const* argv) {
  double time_threshold = 1.5;
  double min_seconds = 0.25;
  bool fail_on_time = false;
  std::int64_t jobs = 0;
  OptionParser parser(
      "pilot-bench diff — compare a campaign against a baseline results "
      "db.\nusage: pilot-bench diff <baseline.jsonl> [<current.jsonl>]\n"
      "With one file, the baseline's recorded campaign (corpus, engines, "
      "budget, seed, --gen override) is re-run and compared.");
  parser.add_double("time-threshold", &time_threshold,
                    "cur/base runtime ratio counted as a regression");
  parser.add_double("min-seconds", &min_seconds,
                    "ignore time regressions on cases faster than this");
  parser.add_flag("fail-on-time", &fail_on_time,
                  "exit non-zero on time regressions too");
  parser.add_int("jobs", &jobs, "re-run mode: worker threads");
  if (!parser.parse(argc, argv)) return 3;
  if (parser.positional().empty() || parser.positional().size() > 2) {
    std::fprintf(stderr,
                 "usage: pilot-bench diff <baseline.jsonl> "
                 "[<current.jsonl>]\n");
    return 3;
  }

  corpus::ResultsDb baseline =
      corpus::ResultsDb::load(parser.positional()[0]);
  if (baseline.rows().empty()) {
    std::fprintf(stderr, "pilot-bench diff: baseline %s is empty\n",
                 parser.positional()[0].c_str());
    return 3;
  }

  corpus::ResultsDb current;
  if (parser.positional().size() == 2) {
    current = corpus::ResultsDb::load(parser.positional()[1]);
  } else {
    // Re-run the campaign the baseline recorded.
    baseline.dedup();
    const corpus::RunContext& ctx = baseline.rows().front().context;
    if (ctx.corpus.empty()) {
      std::fprintf(stderr,
                   "pilot-bench diff: baseline rows carry no corpus source; "
                   "pass a current.jsonl explicitly\n");
      return 3;
    }
    for (const corpus::RunRow& row : baseline.rows()) {
      if (row.context.corpus != ctx.corpus) {
        std::fprintf(stderr,
                     "pilot-bench diff: baseline mixes corpora ('%s' vs "
                     "'%s'); pass a current.jsonl explicitly\n",
                     ctx.corpus.c_str(), row.context.corpus.c_str());
        return 3;
      }
      if (row.context.gen_spec != ctx.gen_spec) {
        std::fprintf(stderr,
                     "pilot-bench diff: baseline mixes --gen overrides "
                     "('%s' vs '%s'); pass a current.jsonl explicitly\n",
                     ctx.gen_spec.c_str(), row.context.gen_spec.c_str());
        return 3;
      }
    }
    check::RunMatrixOptions options;
    options.budget_ms = ctx.budget_ms;
    options.gen_spec = ctx.gen_spec;  // reproduce the recorded campaign
    options.seed = ctx.seed;
    options.jobs = static_cast<std::size_t>(jobs);
    options.strict = false;
    (void)run_campaign(ctx.corpus, baseline.engines(), options, nullptr,
                       &current);
  }

  corpus::DiffOptions options;
  options.time_ratio = time_threshold;
  options.min_seconds = min_seconds;
  options.fail_on_time = fail_on_time;
  const corpus::DiffReport report =
      corpus::diff_runs(baseline, current, options);
  std::fputs(report.summary(options).c_str(), stdout);
  return report.failed(options) ? 1 : 0;
}

int cmd_bench_diff(int argc, const char* const* argv) {
  double threshold_pct = 25.0;
  double min_ns = 100.0;
  bool markdown = false;
  bool fail_on_regress = false;
  OptionParser parser(
      "pilot-bench bench-diff — compare two google-benchmark JSON "
      "artifacts.\nusage: pilot-bench bench-diff <old.json> <new.json>\n"
      "Median aggregates are used when the file carries repetitions; times "
      "are compared on cpu_time.");
  parser.add_double("threshold", &threshold_pct,
                    "percent slowdown flagged as a regression");
  parser.add_double("min-ns", &min_ns,
                    "ignore benchmarks whose slower side is below this");
  parser.add_flag("markdown", &markdown,
                  "emit a GitHub-flavored markdown table instead of text");
  parser.add_flag("fail-on-regress", &fail_on_regress,
                  "exit non-zero when slowdowns exist (default: advisory)");
  if (!parser.parse(argc, argv)) return 3;
  if (parser.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: pilot-bench bench-diff <old.json> <new.json>\n");
    return 3;
  }

  const std::vector<corpus::BenchEntry> baseline =
      corpus::load_benchmark_json(parser.positional()[0]);
  const std::vector<corpus::BenchEntry> current =
      corpus::load_benchmark_json(parser.positional()[1]);
  if (baseline.empty() || current.empty()) {
    // An empty side means the run produced no measurements at all — that
    // must not read as "no regressions", especially under --fail-on-regress.
    std::fprintf(stderr, "pilot-bench bench-diff: %s has no benchmarks\n",
                 baseline.empty() ? parser.positional()[0].c_str()
                                  : parser.positional()[1].c_str());
    return 3;
  }

  corpus::BenchDiffOptions options;
  options.slow_ratio = 1.0 + threshold_pct / 100.0;
  options.fast_ratio = options.slow_ratio;
  options.min_time_ns = min_ns;
  options.fail_on_regress = fail_on_regress;
  const corpus::BenchDiffReport report =
      corpus::diff_benchmarks(baseline, current, options);
  std::fputs(markdown ? report.markdown(options).c_str()
                      : report.summary(options).c_str(),
             stdout);
  return report.failed(options) ? 1 : 0;
}

int cmd_report(int argc, const char* const* argv) {
  OptionParser parser(
      "pilot-bench report — aggregate a campaign db per engine and per "
      "phase.\nusage: pilot-bench report <runs.jsonl>\n"
      "Prints, for each engine: cases run, cases solved, total wall-clock, "
      "and the summed per-phase time table.  Rows written by builds without "
      "phase profiling contribute zeros (their tables are empty).");
  if (!parser.parse(argc, argv)) return 3;
  if (parser.positional().size() != 1) {
    std::fprintf(stderr, "usage: pilot-bench report <runs.jsonl>\n");
    return 3;
  }
  corpus::ResultsDb db = corpus::ResultsDb::load(parser.positional()[0]);
  db.dedup();  // superseded re-run rows must not double-count
  if (db.rows().empty()) {
    std::fprintf(stderr, "pilot-bench report: %s is empty\n",
                 parser.positional()[0].c_str());
    return 3;
  }
  const std::vector<corpus::EnginePhaseReport> rows =
      corpus::aggregate_phase_report(db);
  std::fputs(corpus::render_phase_report(rows).c_str(), stdout);
  return 0;
}

int cmd_validate_json(int argc, const char* const* argv) {
  OptionParser parser(
      "pilot-bench validate-json — parse JSON artifacts and fail on the "
      "first malformed one.\nusage: pilot-bench validate-json <file>...\n"
      "Files ending in .jsonl are validated line by line; everything else "
      "must be one JSON document.  The CI smoke gate for --trace and "
      "--stats-json output.");
  if (!parser.parse(argc, argv)) return 3;
  if (parser.positional().empty()) {
    std::fprintf(stderr, "usage: pilot-bench validate-json <file>...\n");
    return 3;
  }
  for (const std::string& path : parser.positional()) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "pilot-bench validate-json: cannot open %s\n",
                   path.c_str());
      return 3;
    }
    const bool jsonl =
        path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
    try {
      if (jsonl) {
        std::string line;
        std::size_t line_no = 0;
        std::size_t rows = 0;
        while (std::getline(in, line)) {
          ++line_no;
          if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
          try {
            (void)json::parse(line);
          } catch (const std::exception& e) {
            throw std::runtime_error("line " + std::to_string(line_no) +
                                     ": " + e.what());
          }
          ++rows;
        }
        std::printf("%s: ok (%zu rows)\n", path.c_str(), rows);
      } else {
        std::ostringstream text;
        text << in.rdbuf();
        (void)json::parse(text.str());
        std::printf("%s: ok\n", path.c_str());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "pilot-bench validate-json: %s: %s\n",
                   path.c_str(), e.what());
      return 3;
    }
  }
  return 0;
}

int cmd_make_manifest(int argc, const char* const* argv) {
  std::string suite = "tiny";
  std::string out_dir;
  std::string format = "aag";
  OptionParser parser(
      "pilot-bench make-manifest — export a built-in suite as an on-disk "
      "corpus (AIGER files + manifest.json)");
  parser.add_choice("suite", &suite, {"tiny", "quick", "full"},
                    "suite size to export");
  parser.add_string("out", &out_dir, "output directory");
  parser.add_choice("format", &format, {"aag", "aig"},
                    "AIGER flavour (ascii or binary)");
  if (!parser.parse(argc, argv)) return 3;
  if (out_dir.empty()) {
    std::fprintf(stderr, "pilot-bench make-manifest: --out is required\n");
    return 3;
  }
  const corpus::Manifest manifest = corpus::export_suite(
      circuits::suite_size_from_string(suite), out_dir, format == "aig");
  std::printf("wrote %zu cases and %s to %s\n", manifest.entries.size(),
              corpus::kManifestFilename, out_dir.c_str());
  return 0;
}

int cmd_list(int argc, const char* const* argv) {
  std::string corpus_spec;
  OptionParser parser("pilot-bench list — show a corpus' cases");
  parser.add_string("corpus", &corpus_spec,
                    "manifest.json, a directory, or suite:tiny|quick|full");
  if (!parser.parse(argc, argv)) return 3;
  if (corpus_spec.empty() && !parser.positional().empty()) {
    corpus_spec = parser.positional()[0];
  }
  if (corpus_spec.empty()) {
    std::fprintf(stderr, "pilot-bench list: --corpus is required\n");
    return 3;
  }
  const std::vector<corpus::Case> cases =
      corpus::resolve_corpus(corpus_spec);
  std::printf("%-32s %-8s %8s %8s %8s  %s\n", "case", "expect", "inputs",
              "latches", "ands", "tags");
  for (const corpus::Case& c : cases) {
    std::string tags;
    for (const std::string& t : c.tags) {
      if (!tags.empty()) tags += ",";
      tags += t;
    }
    std::printf("%-32s %-8s %8zu %8zu %8zu  %s\n", c.name.c_str(),
                corpus::to_string(c.expected), c.num_inputs, c.num_latches,
                c.num_ands, tags.c_str());
  }
  std::printf("%zu cases\n", cases.size());
  return 0;
}

void print_usage() {
  std::fputs(
      "pilot-bench — benchmark campaigns over AIGER corpora and the\n"
      "built-in suites, persisted to an append-only JSONL results db.\n\n"
      "subcommands:\n"
      "  run            run a (corpus × engines) matrix into the db\n"
      "  diff           compare a campaign against a baseline db\n"
      "  report         aggregate a campaign db per engine and per phase\n"
      "  bench-diff     compare two google-benchmark JSON artifacts\n"
      "  make-manifest  export a built-in suite as an on-disk corpus\n"
      "  list           show a corpus' cases and parse metadata\n"
      "  validate-json  parse JSON/JSONL artifacts (CI smoke gate)\n\n"
      "try `pilot-bench <subcommand> --help` for flags\n",
      stdout);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 3;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    print_usage();
    return 0;
  }
  // Shift so each subcommand parses its own flags from argv[2:].
  std::vector<const char*> args;
  args.push_back(argv[0]);
  for (int i = 2; i < argc; ++i) args.push_back(argv[i]);
  const int sub_argc = static_cast<int>(args.size());

  try {
    if (cmd == "run") return cmd_run(sub_argc, args.data());
    if (cmd == "diff") return cmd_diff(sub_argc, args.data());
    if (cmd == "report") return cmd_report(sub_argc, args.data());
    if (cmd == "validate-json") {
      return cmd_validate_json(sub_argc, args.data());
    }
    if (cmd == "bench-diff") return cmd_bench_diff(sub_argc, args.data());
    if (cmd == "make-manifest") {
      return cmd_make_manifest(sub_argc, args.data());
    }
    if (cmd == "list") return cmd_list(sub_argc, args.data());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pilot-bench %s: %s\n", cmd.c_str(), e.what());
    return 3;
  }
  std::fprintf(stderr, "pilot-bench: unknown subcommand '%s'\n",
               cmd.c_str());
  print_usage();
  return 3;
}
