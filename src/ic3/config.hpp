/// \file config.hpp
/// IC3 engine configuration.
///
/// The six experiment configurations of the paper map onto these knobs
/// (see DESIGN.md §2): the `-pl` variants set `predict_lemmas = true`, the
/// IC3ref/RIC3 baselines differ in `gen_mode`, and ABC-PDR is approximated
/// by the kPdr profile.
#pragma once

#include <cstdint>
#include <string>

namespace pilot::obs {
class ProgressSink;  // obs/progress.hpp — live heartbeat channel
}

namespace pilot::ic3 {

class LemmaBus;  // ic3/lemma_bus.hpp — portfolio lemma-exchange endpoint

/// Inductive generalization strategy.
enum class GenMode {
  kDown,   // plain literal dropping (paper Algorithm 1) — "RIC3" baseline
  kCtg,    // ctgDown [Hassan et al., FMCAD'13] — "IC3ref" baseline
  kCav23,  // kDown with parent-lemma literal ordering [Xia et al., CAV'23]
};

/// Named engine profiles.
enum class Profile {
  kIc3,  // defaults below
  kPdr,  // Een–Mishchenko-style: no CTGs, aggressive propagation
};

struct Config {
  GenMode gen_mode = GenMode::kCtg;

  /// The paper's contribution: predict lemmas from counterexamples to
  /// propagation before dropping variables (Algorithm 2).
  bool predict_lemmas = false;

  /// Generalization-strategy registry spec ("down", "ctg", "cav23",
  /// "predict", "dynamic[:window,threshold]", or any registered name; see
  /// gen_strategy.hpp).  Empty = derive from gen_mode / predict_lemmas, so
  /// existing configurations keep their meaning.
  std::string gen_spec;

  /// `dynamic` strategy defaults (overridable per-spec via
  /// "dynamic:window,threshold"): evaluate the active strategy over its
  /// last `dynamic_window` generalizations and switch away when the
  /// windowed success rate drops below `dynamic_threshold`.
  int dynamic_window = 16;
  double dynamic_threshold = 0.4;

  /// Portfolio lemma exchange (non-owning; engine/lemma_exchange.hpp):
  /// when set, the engine publishes installed lemmas and imports peers'
  /// lemmas at propagation boundaries, validating each import with one
  /// relative-induction query.  Null = standalone run, no sharing.
  LemmaBus* lemma_bus = nullptr;

  /// Live-progress channel (non-owning; obs/progress.hpp): when set, the
  /// engine publishes frames/obligations/lemmas/SAT counters after every
  /// blocked obligation and at propagation boundaries, where the
  /// `--progress` heartbeat thread reads them. Null = no reporting.
  obs::ProgressSink* progress = nullptr;

  /// When a predicted candidate is proven, additionally shrink it with the
  /// returned unsat core (sound strengthening the paper does not do;
  /// off by default for faithfulness — ablation knob).
  bool predict_core_shrink = false;

  /// Extension ablation: allow predicted candidates with up to this many
  /// literals added to the parent lemma (the paper uses exactly 1; Eq. 6).
  int predict_max_extra_lits = 1;

  /// Clear the failure_push table at each propagation (paper line 44).
  /// Ablation: keeping stale entries trades accuracy for hit rate.
  bool clear_failure_push_on_propagate = true;

  /// On failed prediction queries, refine the diff set with the new
  /// counterexample (paper line 27).  Ablation knob.
  bool predict_refine_diff = true;

  // --- generalization tuning ---
  int ctg_max_depth = 1;  // recursion depth of ctgDown
  int ctg_max_ctgs = 3;   // CTGs blocked per down() before joining

  // --- engine behaviour ---
  /// Predecessor lifting strategy: SAT final-conflict cores (default, as in
  /// modern IC3 implementations), ternary simulation (the original PDR
  /// approach of Een–Mishchenko), or none (full model cubes).
  enum class LiftMode { kSat, kTernary, kNone };
  LiftMode lift_mode = LiftMode::kSat;
  /// Ternary-simulation backend for the ternary lifter: the bit-packed
  /// two-plane simulator (32 assignments per word, batched candidate
  /// triage + event-driven confirmation; default — it wins the
  /// BM_TernaryPacked_vs_Byte micro-benchmark) or the byte-wise reference
  /// simulator (kept for A/B runs and the differential tests).  Both
  /// produce bit-identical lifted cubes.
  enum class LiftSim { kPacked, kByte };
  LiftSim lift_sim = LiftSim::kPacked;
  /// Ternary drop-filter in the shared MIC core (down/cav23 drop loops):
  /// cache the CTI witness of each failed candidate-drop solve and skip a
  /// later candidate when packed ternary simulation shows the cached
  /// witness already defeats it.  Exact — only solves that would certainly
  /// fail are skipped, so verdicts and invariants are unchanged; the off
  /// position exists for A/B measurement.
  bool gen_ternary_filter = true;
  bool reenqueue_obligations = true;
  /// Rebuild the main solver after this many retired temporary activation
  /// literals (controls junk accumulation).
  std::size_t rebuild_tmp_threshold = 3000;

  // --- SAT layer tuning ---
  /// Assumption-prefix trail reuse in the CDCL core: keep the solver trail
  /// between queries and re-propagate only the diverging assumption suffix.
  /// On by default; the off position exists for A/B measurement and for
  /// the verdict-equivalence tests.
  bool sat_trail_reuse = true;
  /// SAT inprocessing: occurrence-list forward subsumption plus
  /// self-subsuming resolution when lemma clauses are installed (a stronger
  /// lemma retires weaker ones without waiting for a rebuild), and
  /// vivification of long learnt clauses at frame boundaries.  Verdict
  /// preserving; the off position exists for A/B measurement.
  bool sat_inprocess = true;
  /// Batched generalization probes: answer up to this many MIC candidate
  /// drops with one relative-induction solve — UNSAT adopts the multi-drop
  /// core, SAT attributes the CTI to every candidate whose single-drop
  /// query it also witnesses.  1 disables batching (sequential drop loop);
  /// ctgDown is never batched (it consumes each CTI individually).
  int gen_batch = 4;
  /// Adaptive batch width: instead of the fixed gen_batch, size each probe
  /// group from the observed candidate failure rate f.  A batch solve is
  /// SAT ⟺ *all* k candidates fail (probability ≈ f^k), so the width that
  /// makes both outcomes equally likely — and a solve maximally informative
  /// — is k ≈ ln(0.5)/ln(f), clamped to [1, gen_batch_max].  Off by
  /// default; verdict-preserving either way (batching is exact).
  bool gen_batch_adaptive = false;
  /// Upper clamp for the adaptive width.
  int gen_batch_max = 8;
  /// Carry saved phases and (normalized) variable activities into the
  /// fresh solver when maybe_rebuild() retires one, instead of restarting
  /// the search heuristics from zero.
  bool rebuild_carry_state = true;

  std::uint64_t seed = 0;

  /// Applies a named profile on top of the defaults.
  void apply_profile(Profile p) {
    if (p == Profile::kPdr) {
      gen_mode = GenMode::kDown;
      ctg_max_depth = 0;
      ctg_max_ctgs = 0;
      reenqueue_obligations = true;
      lift_mode = LiftMode::kTernary;  // PDR'11 used ternary simulation
    }
  }

  /// The strategy-registry spec this configuration resolves to: gen_spec
  /// verbatim when set, otherwise derived from the legacy knobs.
  [[nodiscard]] std::string resolved_gen_spec() const {
    if (!gen_spec.empty()) return gen_spec;
    if (predict_lemmas) return "predict";
    switch (gen_mode) {
      case GenMode::kDown: return "down";
      case GenMode::kCav23: return "cav23";
      case GenMode::kCtg: break;
    }
    return "ctg";
  }

  [[nodiscard]] std::string describe() const {
    return "gen=" + resolved_gen_spec();
  }
};

}  // namespace pilot::ic3
