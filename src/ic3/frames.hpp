/// \file frames.hpp
/// The monotone frame sequence F_0 ⊇ F_1 ⊇ … ⊇ F_k in delta encoding.
///
/// `delta(i)` holds the lemmas whose *top* level is exactly i, i.e. the set
/// F_i \ F_{i+1} of the paper; the logical frame is
///   R_i = ⋂ clauses of delta(j) for j ≥ i.
/// Frame 0 is the initial-state cube and is handled by the solver layer, so
/// delta(0) stays empty here.
///
/// Subsumption is maintained on insertion: a lemma (cube c, level i)
/// subsumes (cube d, level j) iff c ⊆ d and i ≥ j (smaller cube = stronger
/// clause; higher level = holds in more frames).
#pragma once

#include <cstddef>
#include <vector>

#include "ic3/cube.hpp"

namespace pilot::ic3 {

class Frames {
 public:
  /// Grows the sequence so that `level` is a valid index.
  void ensure_level(std::size_t level) {
    if (level >= delta_.size()) delta_.resize(level + 1);
  }

  [[nodiscard]] std::size_t top_level() const { return delta_.size() - 1; }

  [[nodiscard]] const std::vector<Cube>& delta(std::size_t level) const {
    return delta_[level];
  }

  /// Adds a lemma with top level `level`, maintaining subsumption.
  /// Returns false (and does nothing) if an existing lemma already subsumes
  /// it.  `removed_count`, when non-null, receives the number of lemmas the
  /// new one displaced.
  bool add_lemma(const Cube& cube, std::size_t level,
                 std::size_t* removed_count = nullptr);

  /// Removes a lemma from delta(level); returns false if not present.
  bool remove_lemma(const Cube& cube, std::size_t level);

  /// True iff some lemma with top level ≥ `level` blocks `cube`
  /// (i.e. its cube is a subset of `cube`, Theorem 3.4).
  [[nodiscard]] bool subsumed_at(const Cube& cube, std::size_t level) const;

  /// Parent lemmas of Algorithm 2: lemmas p ∈ F_level \ F_{level+1}
  /// (= delta(level)) with p ⊆ cube, i.e. clause ¬p implies clause ¬cube.
  [[nodiscard]] std::vector<Cube> parents_of(const Cube& cube,
                                             std::size_t level) const;

  /// Total number of stored lemmas.
  [[nodiscard]] std::size_t total_lemmas() const;

 private:
  std::vector<std::vector<Cube>> delta_;
};

}  // namespace pilot::ic3
