#include "serve/server.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "aig/aiger_io.hpp"
#include "check/runner.hpp"
#include "corpus/corpus.hpp"
#include "obs/trace.hpp"

#if !defined(_WIN32)
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace pilot::serve {

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server() {
  request_stop();
  wait();
}

#if defined(_WIN32)

bool Server::start(std::string* error) {
  if (error != nullptr) *error = "pilot serve requires AF_UNIX sockets";
  return false;
}
void Server::request_stop() {}
void Server::wait() {}
bool Server::draining() const { return true; }
ServerStats Server::stats() const { return {}; }

std::optional<std::string> client_request(const std::string&,
                                          const std::string&,
                                          std::string* error) {
  if (error != nullptr) *error = "AF_UNIX sockets unsupported";
  return std::nullopt;
}

#else  // POSIX

namespace {

/// Reads one '\n'-terminated header line (bounded; a client that sends no
/// newline within the cap is malformed).
bool read_line(int fd, std::string* line) {
  line->clear();
  char c = 0;
  while (line->size() < 4096) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n <= 0) return false;
    if (c == '\n') return true;
    line->push_back(c);
  }
  return false;
}

bool read_exact(int fd, std::string* out, std::size_t nbytes) {
  out->resize(nbytes);
  std::size_t got = 0;
  while (got < nbytes) {
    const ssize_t n = ::read(fd, out->data() + got, nbytes - got);
    if (n <= 0) return false;
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void write_all(int fd, const std::string& text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t n = ::write(fd, text.data() + sent, text.size() - sent);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

bool Server::start(std::string* error) {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket() failed";
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                options_.socket_path.c_str());
  ::unlink(options_.socket_path.c_str());  // replace a stale socket file
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    if (error != nullptr) {
      *error = "cannot bind/listen on " + options_.socket_path;
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  std::size_t n_workers = options_.workers;
  if (n_workers == 0) {
    n_workers = std::max(1u, std::thread::hardware_concurrency());
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  workers_.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  return true;
}

void Server::request_stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
}

bool Server::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stop_;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Server::accept_loop() {
  for (;;) {
    // Poll with a timeout so request_stop() is observed promptly even when
    // no client ever connects again.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rv = ::poll(&pfd, 1, /*timeout_ms=*/200);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) return;
    }
    if (rv <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    bool rejected = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.accepted;
      if (queue_.size() >= options_.queue_capacity) {
        ++stats_.rejected_queue_full;
        rejected = true;
      } else {
        queue_.push_back(fd);
      }
    }
    if (rejected) {
      // Backpressure: answer immediately instead of queueing unboundedly.
      write_all(fd, "error queue full (capacity " +
                        std::to_string(options_.queue_capacity) + ")\n");
      ::close(fd);
    } else {
      queue_cv_.notify_one();
    }
  }
}

void Server::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;  // drained: every accepted job was served
        continue;
      }
      fd = queue_.front();
      queue_.pop_front();
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void Server::handle_connection(int fd) {
  PILOT_TRACE_ZONE("serve.request");
  std::string header;
  if (!read_line(fd, &header)) {
    write_all(fd, "error malformed request\n");
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.errors;
    return;
  }

  if (header == "ping") {
    write_all(fd, "ok pong\n");
    return;
  }
  if (header == "stop") {
    write_all(fd, "ok draining\n");
    request_stop();
    return;
  }
  if (header == "stats") {
    std::ostringstream out;
    const ServerStats s = stats();
    out << "ok served=" << s.served << " errors=" << s.errors
        << " rejected=" << s.rejected_queue_full;
    if (options_.cache != nullptr) {
      const CacheStats& cs = options_.cache->stats();
      out << " entries=" << options_.cache->size()
          << " hits=" << cs.hits.load() << " misses=" << cs.misses.load()
          << " revalidation_failures=" << cs.revalidation_failures.load();
    }
    out << "\n";
    write_all(fd, out.str());
    return;
  }

  if (header.rfind("check ", 0) != 0) {
    write_all(fd, "error unknown command\n");
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.errors;
    return;
  }

  std::size_t nbytes = 0;
  try {
    nbytes = static_cast<std::size_t>(std::stoull(header.substr(6)));
  } catch (const std::exception&) {
    write_all(fd, "error malformed check header\n");
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.errors;
    return;
  }
  constexpr std::size_t kMaxRequestBytes = 256u << 20;  // 256 MiB
  std::string payload;
  if (nbytes > kMaxRequestBytes || !read_exact(fd, &payload, nbytes)) {
    write_all(fd, "error truncated payload\n");
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.errors;
    return;
  }

  // One-case run through the exact batch pipeline: canonical hash → cache
  // lookup (revalidated) → advisor opening bid → engine → certified store.
  try {
    corpus::Case cc;
    cc.name = "serve";
    cc.family = "aiger";
    cc.load = [payload]() { return aig::read_aiger_string(payload); };

    check::RunMatrixOptions mo;
    mo.budget_ms = options_.budget_ms;
    mo.seed = options_.seed;
    mo.jobs = 1;          // already on a worker thread
    mo.strict = false;    // a bad client input must not abort the server
    mo.cache = options_.cache;
    mo.advisor = options_.advisor;
    const std::vector<check::RunRecord> records =
        check::run_matrix(std::vector<corpus::Case>{cc},
                          {options_.engine_spec}, mo);
    const check::RunRecord& r = records.front();
    if (!r.error.empty()) {
      write_all(fd, "error " + r.error + "\n");
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.errors;
      return;
    }
    std::ostringstream out;
    out << "ok verdict=" << ic3::to_string(r.verdict)
        << " cached=" << (r.cache_status == "hit" ? 1 : 0)
        << " engine=" << r.engine << " seconds=" << r.seconds
        << " hash=" << r.content_hash << "\n";
    write_all(fd, out.str());
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.served;
  } catch (const std::exception& e) {
    write_all(fd, std::string("error ") + e.what() + "\n");
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.errors;
  }
}

std::optional<std::string> client_request(const std::string& socket_path,
                                          const std::string& request,
                                          std::string* error) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "socket() failed";
    return std::nullopt;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long";
    ::close(fd);
    return std::nullopt;
  }
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                socket_path.c_str());
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) *error = "cannot connect to " + socket_path;
    ::close(fd);
    return std::nullopt;
  }
  write_all(fd, request);
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

#endif  // POSIX

std::string make_check_request(const std::string& aiger_text) {
  return "check " + std::to_string(aiger_text.size()) + "\n" + aiger_text;
}

}  // namespace pilot::serve
