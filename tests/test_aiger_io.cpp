/// AIGER reader/writer tests: ASCII and binary round trips (checked by
/// co-simulation), header variants, reset values, bad/constraint sections,
/// and malformed-input rejection.
#include <gtest/gtest.h>

#include <stdexcept>

#include "aig/aiger_io.hpp"
#include "aig/simulation.hpp"
#include "circuits/families.hpp"
#include "util/rng.hpp"

namespace pilot::aig {
namespace {

/// Semantic equivalence by 64-way random co-simulation over several steps.
void expect_equivalent(const Aig& a, const Aig& b, std::uint64_t seed) {
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  ASSERT_EQ(a.num_latches(), b.num_latches());
  ASSERT_EQ(a.bads().size(), b.bads().size());
  ASSERT_EQ(a.outputs().size(), b.outputs().size());

  pilot::Rng rng(seed);
  BitSimulator sa(a);
  BitSimulator sb(b);
  sa.reset();
  sb.reset();
  for (int step = 0; step < 8; ++step) {
    std::vector<std::uint64_t> inputs(a.num_inputs());
    for (auto& w : inputs) w = rng.next_u64();
    sa.compute(inputs);
    sb.compute(inputs);
    for (std::size_t i = 0; i < a.bads().size(); ++i) {
      EXPECT_EQ(sa.value(a.bads()[i]), sb.value(b.bads()[i]))
          << "bad " << i << " diverges at step " << step;
    }
    for (std::size_t i = 0; i < a.outputs().size(); ++i) {
      EXPECT_EQ(sa.value(a.outputs()[i]), sb.value(b.outputs()[i]));
    }
    sa.latch_step();
    sb.latch_step();
  }
}

TEST(AigerIo, ParsesMinimalAscii) {
  // Single AND of two inputs.
  const Aig a = read_aiger_string("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n");
  EXPECT_EQ(a.num_inputs(), 2u);
  EXPECT_EQ(a.num_ands(), 1u);
  ASSERT_EQ(a.outputs().size(), 1u);
}

TEST(AigerIo, ParsesLatchWithResetValues) {
  // Three latches: init 0 (default), init 1, uninitialized (init == lhs).
  const Aig a = read_aiger_string(
      "aag 3 0 3 0 0\n2 2\n4 4 1\n6 6 6\n");
  ASSERT_EQ(a.num_latches(), 3u);
  EXPECT_EQ(a.init(a.latches()[0]), l_False);
  EXPECT_EQ(a.init(a.latches()[1]), l_True);
  EXPECT_TRUE(a.init(a.latches()[2]).is_undef());
}

TEST(AigerIo, ParsesBadAndConstraintSections) {
  // aag M I L O A B C.
  const Aig a = read_aiger_string(
      "aag 2 1 1 0 0 1 1\n2\n4 4\n4\n2\n");
  EXPECT_EQ(a.bads().size(), 1u);
  EXPECT_EQ(a.constraints().size(), 1u);
}

TEST(AigerIo, AsciiRoundTripOnFamilies) {
  for (auto make : {circuits::token_ring_safe, circuits::token_ring_unsafe}) {
    const circuits::CircuitCase cc = make(5);
    const Aig back = read_aiger_string(to_aiger_ascii(cc.aig));
    expect_equivalent(cc.aig, back, 123);
  }
}

TEST(AigerIo, BinaryRoundTripOnFamilies) {
  const circuits::CircuitCase cc = circuits::fifo_safe(4, 11);
  const Aig back = read_aiger_string(to_aiger_binary(cc.aig));
  expect_equivalent(cc.aig, back, 321);
}

TEST(AigerIo, AsciiBinaryCrossRoundTrip) {
  const circuits::CircuitCase cc = circuits::gray_counter_safe(5);
  const Aig via_ascii = read_aiger_string(to_aiger_ascii(cc.aig));
  const Aig via_binary = read_aiger_string(to_aiger_binary(cc.aig));
  expect_equivalent(via_ascii, via_binary, 777);
}

TEST(AigerIo, RoundTripPreservesConstraints) {
  const circuits::CircuitCase cc = circuits::shift_register(6, true);
  ASSERT_EQ(cc.aig.constraints().size(), 1u);
  const Aig back = read_aiger_string(to_aiger_binary(cc.aig));
  EXPECT_EQ(back.constraints().size(), 1u);
  expect_equivalent(cc.aig, back, 55);
}

TEST(AigerIo, RejectsBadMagic) {
  EXPECT_THROW(read_aiger_string("xyz 0 0 0 0 0\n"), std::runtime_error);
}

TEST(AigerIo, RejectsTruncatedHeader) {
  EXPECT_THROW(read_aiger_string("aag 3 2\n"), std::runtime_error);
}

TEST(AigerIo, RejectsJusticeProperties) {
  EXPECT_THROW(read_aiger_string("aag 1 1 0 0 0 0 0 1\n2\n"),
               std::runtime_error);
}

TEST(AigerIo, RejectsUndefinedLiteral) {
  EXPECT_THROW(read_aiger_string("aag 2 1 0 1 0\n2\n4\n"),
               std::runtime_error);
}

TEST(AigerIo, RejectsCombinationalLoopInAscii) {
  // 6 depends on 8, 8 depends on 6.
  EXPECT_THROW(
      read_aiger_string("aag 4 1 0 1 2\n2\n6\n6 8 2\n8 6 2\n"),
      std::runtime_error);
}

TEST(AigerIo, BinaryVarintBoundary) {
  // A circuit wide enough to need multi-byte varint deltas.
  Aig a;
  std::vector<AigLit> xs;
  for (int i = 0; i < 40; ++i) xs.push_back(a.add_input());
  AigLit acc = xs[0];
  for (int i = 1; i < 40; ++i) acc = a.make_and(acc, xs[i]);
  a.add_output(acc);
  const Aig back = read_aiger_string(to_aiger_binary(a));
  expect_equivalent(a, back, 999);
}

TEST(AigerIo, FileRoundTrip) {
  const circuits::CircuitCase cc = circuits::counter_unsafe(5, 17);
  const std::string path_aag = "/tmp/pilot_test_roundtrip.aag";
  const std::string path_aig = "/tmp/pilot_test_roundtrip.aig";
  write_aiger_file(cc.aig, path_aag);
  write_aiger_file(cc.aig, path_aig);
  expect_equivalent(read_aiger_file(path_aag), read_aiger_file(path_aig), 1);
}

}  // namespace
}  // namespace pilot::aig
