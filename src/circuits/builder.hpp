/// \file builder.hpp
/// Word-level construction helpers over the bit-level AIG builder.
///
/// The benchmark families are written against these primitives (ripple
/// adders, comparators, one-hot rotators, ...), mirroring how HWMCC
/// benchmarks are synthesized from RTL.  Words are little-endian vectors of
/// AIG literals (bits[0] = LSB).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace pilot::circuits {

using aig::Aig;
using aig::AigLit;
using Word = std::vector<AigLit>;

/// Creates `n` fresh primary inputs.
Word make_inputs(Aig& aig, std::size_t n, const std::string& prefix = {});

/// Creates `n` latches initialized to the bits of `init` (LSB first).
Word make_latches(Aig& aig, std::size_t n, std::uint64_t init = 0,
                  const std::string& prefix = {});

/// Wires the next-state functions of latch word `latches` to `next`.
void connect(Aig& aig, const Word& latches, const Word& next);

/// Constant word of the given width.
Word const_word(std::size_t n, std::uint64_t value);

// ----- arithmetic ----------------------------------------------------------

/// Ripple-carry sum a+b+carry_in, truncated to |a| bits.
Word ripple_add(Aig& aig, const Word& a, const Word& b,
                AigLit carry_in = AigLit::constant(false));

/// a + 1 (width preserved, wraps).
Word increment(Aig& aig, const Word& a);

/// a - b (two's complement, width preserved).
Word subtract(Aig& aig, const Word& a, const Word& b);

// ----- comparisons ---------------------------------------------------------

AigLit equals_const(Aig& aig, const Word& a, std::uint64_t value);
AigLit equals(Aig& aig, const Word& a, const Word& b);
/// Unsigned a < b.
AigLit less_than(Aig& aig, const Word& a, const Word& b);
AigLit less_than_const(Aig& aig, const Word& a, std::uint64_t value);

// ----- steering ------------------------------------------------------------

/// Bitwise select: sel ? t : e.
Word mux_word(Aig& aig, AigLit sel, const Word& t, const Word& e);

/// Bitwise XOR of equal-width words.
Word xor_word(Aig& aig, const Word& a, const Word& b);

/// Logical right shift by a constant amount (zero fill).
Word shift_right_const(const Word& a, std::size_t amount);

// ----- predicates ----------------------------------------------------------

/// True iff at least two of the literals are 1.
AigLit at_least_two(Aig& aig, const Word& bits);

/// True iff exactly one of the literals is 1.
AigLit exactly_one(Aig& aig, const Word& bits);

/// XOR-reduction (parity) of a word.
AigLit parity(Aig& aig, const Word& bits);

}  // namespace pilot::circuits
