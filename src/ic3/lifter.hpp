/// \file lifter.hpp
/// Lifting of concrete states to cubes, by SAT cores or ternary simulation.
///
/// SAT mode: given a full predecessor assignment (s, y) whose unique
/// successor lies in cube t, the query  s ∧ y ∧ T ∧ ¬t'  is unsatisfiable;
/// the final-conflict core over the s-literals is a partial cube every one
/// of whose states still transitions into t under input y.
///
/// Ternary mode (the original PDR approach): X-out one latch of s at a
/// time and keep the X if three-valued simulation still produces definite,
/// matching values on the successor cube (and keeps the constraints and —
/// for bad lifting — the bad signal definite).  No solver involved; cost is
/// one circuit sweep per latch.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "aig/simulation.hpp"
#include "ic3/config.hpp"
#include "ic3/cube.hpp"
#include "ic3/stats.hpp"
#include "sat/solver.hpp"
#include "ts/transition_system.hpp"
#include "util/timer.hpp"

namespace pilot::ic3 {

class Lifter {
 public:
  Lifter(const ts::TransitionSystem& ts, const Config& cfg, Ic3Stats& stats);

  /// Shrinks a full predecessor cube: every state of the result reaches a
  /// state in `successor` in one step under `inputs`.
  Cube lift_predecessor(const Cube& pred_full, const std::vector<Lit>& inputs,
                        const Cube& successor, const Deadline& deadline);

  /// Shrinks a full state in the bad cone: every state of the result can
  /// produce bad with `inputs`.
  Cube lift_bad(const Cube& state_full, const std::vector<Lit>& inputs,
                const Deadline& deadline);

 private:
  void maybe_rebuild();
  Cube core_projection(const Cube& full) const;
  /// Shared ternary-lifting loop; `keeps_target` judges one simulation.
  Cube ternary_lift(const Cube& full, const std::vector<Lit>& inputs,
                    const std::function<bool()>& target_definite);
  Cube ternary_lift_predecessor(const Cube& pred_full,
                                const std::vector<Lit>& inputs,
                                const Cube& successor);
  Cube ternary_lift_bad(const Cube& state_full,
                        const std::vector<Lit>& inputs);

  const ts::TransitionSystem& ts_;
  const Config& cfg_;
  Ic3Stats& stats_;
  std::unique_ptr<sat::Solver> solver_;
  std::unique_ptr<aig::TernarySimulator> ternary_;
  std::vector<aig::TV> latch_values_;
  std::vector<aig::TV> input_values_;
  std::size_t retired_tmp_ = 0;
};

}  // namespace pilot::ic3
