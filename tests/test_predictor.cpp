/// Predictor tests: the failure_push table, parent discovery, the diff-set
/// candidate construction of Equation 6, the empty-diff "push the parent"
/// path, counter updates (N_p / N_sp / N_fp), and table clearing.
#include <gtest/gtest.h>

#include "circuits/families.hpp"
#include "ic3/predictor.hpp"
#include "ic3/solver_manager.hpp"
#include "ts/transition_system.hpp"

namespace pilot::ic3 {
namespace {

/// Wrap-at-4 counter (3 bits): reachable states 0..3, all counts ≥ 4
/// unreachable.  A hand-steerable playground for prediction.
struct PredictorFixture {
  PredictorFixture()
      : cc(circuits::counter_wrap_safe(3, 4, 6)),
        ts(ts::TransitionSystem::from_aig(cc.aig)),
        solvers(ts, cfg, stats),
        predictor(solvers, frames, cfg, stats) {
    solvers.ensure_level(2);
    frames.ensure_level(2);
  }

  Cube state_cube(std::uint64_t value) {
    std::vector<Lit> lits;
    for (std::size_t i = 0; i < ts.num_latches(); ++i) {
      lits.push_back(Lit::make(ts.state_var(i), ((value >> i) & 1ULL) == 0));
    }
    return Cube::from_lits(std::move(lits));
  }

  void install_lemma(const Cube& c, std::size_t level) {
    ASSERT_TRUE(frames.add_lemma(c, level));
    solvers.add_lemma_clause(c, level);
  }

  circuits::CircuitCase cc;
  ts::TransitionSystem ts;
  Config cfg;
  Ic3Stats stats;
  Frames frames;
  SolverManager solvers{ts, cfg, stats};
  Predictor predictor{solvers, frames, cfg, stats};
};

TEST(Predictor, NoParentsNoPrediction) {
  PredictorFixture f;
  const auto result = f.predictor.predict(f.state_cube(6), 1, Deadline{});
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(f.stats.num_prediction_queries, 0u);
  EXPECT_EQ(f.stats.num_found_failed_parents, 0u);
}

TEST(Predictor, ParentWithoutRecordedFailureIsSkipped) {
  PredictorFixture f;
  // Parent lemma {bit2=1} ⊆ b in delta(1), but no CTP recorded.
  f.install_lemma(Cube::from_lits({Lit::make(f.ts.state_var(2))}), 1);
  const auto result = f.predictor.predict(f.state_cube(6), 2, Deadline{});
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(f.stats.num_prediction_queries, 0u);   // lines 12-13: no query
  EXPECT_EQ(f.stats.num_found_failed_parents, 0u); // N_fp untouched
}

TEST(Predictor, EmptyDiffPushesParentSuccessfully) {
  PredictorFixture f;
  // Parent p = {bit2=1} (counts 4..7) at level 1; it IS inductive at
  // level 1 relative to R_1 (its own clause blocks the predecessors).
  const Cube p = Cube::from_lits({Lit::make(f.ts.state_var(2))});
  f.install_lemma(p, 1);
  // Record a fake CTP t that intersects b = {count=6}: diff(b, t) = ∅.
  f.predictor.record_push_failure(p, 1, f.state_cube(6));
  const auto result = f.predictor.predict(f.state_cube(6), 2, Deadline{});
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, p);  // the parent itself is the predicted lemma
  EXPECT_EQ(f.stats.num_prediction_queries, 1u);       // one SAT query
  EXPECT_EQ(f.stats.num_successful_predictions, 1u);   // N_sp
  EXPECT_EQ(f.stats.num_found_failed_parents, 1u);     // N_fp
}

TEST(Predictor, EmptyDiffFailedPushRefreshesCtp) {
  PredictorFixture f;
  // Parent p = {bit1=1, bit2=1} (counts 6,7) at level 1.  Pushing it to
  // level 2 fails: predecessor 5 ∈ R_1 steps into 6.
  const Cube p = Cube::from_lits(
      {Lit::make(f.ts.state_var(1)), Lit::make(f.ts.state_var(2))});
  f.install_lemma(p, 1);
  f.predictor.record_push_failure(p, 1, f.state_cube(6));
  // b = {count=6} = {bit0=0,bit1=1,bit2=1}; t = same state → empty diff.
  const auto result = f.predictor.predict(f.state_cube(6), 2, Deadline{});
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(f.stats.num_prediction_queries, 1u);
  EXPECT_EQ(f.stats.num_successful_predictions, 0u);
  EXPECT_EQ(f.stats.num_found_failed_parents, 1u);  // parent was found
}

TEST(Predictor, DiffSetCandidateValidatesEquation6) {
  PredictorFixture f;
  // Parent p = {bit2=1} at level 1.  CTP t = count 5 (bit0=1,bit1=0,bit2=1).
  // b = count 6 (bit0=0,bit1=1,bit2=1).  diff(b,t) = {¬bit0, bit1}.
  // Candidate p ∪ {d}: {bit2, ¬bit0} (counts 4,6) or {bit2, bit1}
  // (counts 6,7).  {bit2, bit1}: predecessors 5 (→6) excluded? 5 ⊨ ¬cand?
  // 5 has bit1=0 → outside cand... 5 ∈ R_1 (R_1 only excludes bit2=1
  // via p? p is AT level 1 so R_1 includes ¬p: 5 has bit2=1 → blocked!).
  // So every predecessor into the candidate is blocked by ¬p: inductive.
  const Cube p = Cube::from_lits({Lit::make(f.ts.state_var(2))});
  f.install_lemma(p, 1);
  f.predictor.record_push_failure(p, 1, f.state_cube(5));

  const Cube b = f.state_cube(6);
  const auto result = f.predictor.predict(b, 2, Deadline{});
  ASSERT_TRUE(result.has_value());
  // Predicted lemma: parent plus exactly one literal from diff(b, t).
  EXPECT_EQ(result->size(), p.size() + 1);
  EXPECT_TRUE(p.subset_of(*result));
  EXPECT_TRUE(result->subset_of(b));
  EXPECT_GE(f.stats.num_successful_predictions, 1u);
}

TEST(Predictor, ClearDropsAllEntries) {
  PredictorFixture f;
  const Cube p = Cube::from_lits({Lit::make(f.ts.state_var(2))});
  f.install_lemma(p, 1);
  f.predictor.record_push_failure(p, 1, f.state_cube(6));
  EXPECT_EQ(f.predictor.table_size(), 1u);
  f.predictor.clear();
  EXPECT_EQ(f.predictor.table_size(), 0u);
  // After clearing, the parent behaves as if it never failed (lines 12-13).
  const auto result = f.predictor.predict(f.state_cube(6), 2, Deadline{});
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(f.stats.num_found_failed_parents, 0u);
}

TEST(Predictor, RecordOverwritesWithFreshestCtp) {
  PredictorFixture f;
  const Cube p = Cube::from_lits({Lit::make(f.ts.state_var(2))});
  f.predictor.record_push_failure(p, 1, f.state_cube(5));
  f.predictor.record_push_failure(p, 1, f.state_cube(7));
  EXPECT_EQ(f.predictor.table_size(), 1u);  // keyed by (lemma, level)
  // Different level = different entry.
  f.predictor.record_push_failure(p, 2, f.state_cube(5));
  EXPECT_EQ(f.predictor.table_size(), 2u);
}

TEST(Predictor, PredictedLemmaBlocksTheObligationCube) {
  // End-to-end property on a real engine-like sequence: whatever predict()
  // returns must subsume b (so adding ¬result actually blocks b) and be
  // disjoint from the initial states.
  PredictorFixture f;
  const Cube p = Cube::from_lits({Lit::make(f.ts.state_var(2))});
  f.install_lemma(p, 1);
  f.predictor.record_push_failure(p, 1, f.state_cube(5));
  const Cube b = f.state_cube(6);
  const auto result = f.predictor.predict(b, 2, Deadline{});
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->subset_of(b));
  EXPECT_FALSE(f.ts.cube_intersects_init(result->lits()));
  // And it must genuinely be relative-inductive at level 1.
  EXPECT_TRUE(f.solvers.relative_inductive(*result, 1, false, nullptr,
                                           Deadline{}));
}

}  // namespace
}  // namespace pilot::ic3
