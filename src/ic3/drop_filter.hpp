/// \file drop_filter.hpp
/// Ternary drop-filter for the shared MIC core: skip relative-induction
/// solves that a cached counterexample already defeats.
///
/// When a candidate drop fails, the solver hands back a CTI model (s, y):
/// a state s in the frame, outside the candidate, whose successor
/// s' = T(s, y) lands back inside the candidate.  The same (s, y) defeats
/// every *later* candidate `cand` of the drop loop with
///
///     s ∉ cand   and   s' ⊨ cand   (and the invariant constraints hold),
///
/// because (s, y, s') is then a ready-made satisfying assignment of the
/// later query  R ∧ ¬cand ∧ T ∧ cand' — the solver would certainly return
/// SAT, so the solve can be skipped without changing any outcome.
///
/// The filter keeps up to 32 witnesses, one per lane of a
/// PackedTernarySimulator: adding a witness seeds its lane with s and y
/// (unassigned model variables stay X), one packed sweep computes all
/// cached successors at once, and screening a candidate is a few lane
/// reads per literal.  X-propagation makes partial models sound: a check
/// only fires on definite lane values, which hold for *every* completion
/// of the partial model.
///
/// Within a single MIC pass the cache provably never fires: when the drop
/// of literal l fails, the CTI successor s' cannot satisfy the still-held
/// cube (relative inductiveness of the cube would force s back inside it),
/// so s'(l) is wrong for every later candidate of the pass — they all
/// retain l.  The payoff is *across* passes: a witness from one cube's
/// generalization defeats candidates of later cubes blocked nearby.
///
/// Exactness across passes requires tracking frame strengthening: a
/// witness claims s ⊨ R_{level-1}, which a newly installed clause ¬g can
/// break.  The owner reports every install through on_lemma(); a witness
/// survives only when its cached s *definitely* satisfies ¬g (some
/// literal of g reads definitely-false in the lane — X is conservatively
/// treated as a violation).  Installs strictly below the witness level
/// cannot affect any frame the witness claims and are skipped.  The ctg
/// loop is *not* filtered: it consumes the CTI model of every failed
/// solve, so skipping the solve would change its behaviour.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "aig/simulation.hpp"
#include "ic3/cube.hpp"
#include "ic3/stats.hpp"
#include "ts/transition_system.hpp"

namespace pilot::ic3 {

class DropFilter {
 public:
  DropFilter(const ts::TransitionSystem& ts, Ic3Stats& stats);

  /// Forgets every cached witness.  Only needed when frame strengthening
  /// can bypass on_lemma() (not the case for the engine's install paths);
  /// kept for tests and defensive callers.
  void reset();

  /// The clause ¬`lemma` was installed into the frames at `level`:
  /// invalidates every witness whose cached state is not *definitely*
  /// outside `lemma` (and whose level the install can affect).
  void on_lemma(const Cube& lemma, std::size_t level);

  /// Caches the CTI model of a failed candidate-drop solve issued at
  /// `level` (partial models are fine).  Overwrites the oldest witness
  /// when all 32 lanes are in use.
  void add_witness(const Cube& state, const std::vector<Lit>& inputs,
                   std::size_t level);

  /// True when a cached witness proves the relative-induction solve for
  /// `cand` at `level` would fail — the caller may skip it.
  [[nodiscard]] bool rejects(const Cube& cand, std::size_t level);

 private:
  static constexpr std::size_t kSlots = aig::PackedTernarySimulator::kLanes;

  struct Slot {
    bool valid = false;
    bool constraints_ok = false;  // all invariant constraints definite-one
    std::size_t level = 0;
  };

  void refresh();  // re-sweep after new witnesses, recheck constraints

  const ts::TransitionSystem& ts_;
  Ic3Stats& stats_;
  aig::PackedTernarySimulator sim_;
  std::array<Slot, kSlots> slots_;
  std::size_t next_slot_ = 0;
  std::size_t num_valid_ = 0;
  bool dirty_ = false;
};

}  // namespace pilot::ic3
