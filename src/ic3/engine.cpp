#include "ic3/engine.hpp"

#include <algorithm>

#include "obs/phase.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace pilot::ic3 {

Engine::Engine(const ts::TransitionSystem& ts, Config cfg)
    : ts_(ts),
      cfg_(cfg),
      solvers_(ts_, cfg_, stats_),
      lifter_(ts_, cfg_, stats_),
      generalizer_(ts_, solvers_, frames_, cfg_, stats_) {}

void Engine::add_lemma(const Cube& cube, std::size_t level) {
  std::size_t removed = 0;
  if (frames_.add_lemma(cube, level, &removed)) {
    solvers_.add_lemma_clause(cube, level);
    generalizer_.on_lemma(cube, level);
    ++stats_.num_lemmas;
    stats_.num_subsumed_lemmas += removed;
    if (cfg_.lemma_bus != nullptr && !importing_) {
      cfg_.lemma_bus->publish(cube, level);
      ++stats_.num_exchange_published;
    }
  }
}

void Engine::import_shared_lemmas(const Deadline& deadline) {
  if (cfg_.lemma_bus == nullptr) return;
  obs::PhaseScope phase(&stats_.phases, obs::Phase::kExchange);
  for (SharedLemma& shared : cfg_.lemma_bus->poll()) {
    if (cancel_ != nullptr && cancel_->stop_requested()) throw TimeoutError{};
    // Clamp to our own frame sequence: the publisher may be further along.
    const std::size_t level =
        std::min(shared.level, frames_.top_level());
    if (level < 1 || shared.cube.empty() ||
        ts_.cube_intersects_init(shared.cube.lits())) {
      ++stats_.num_exchange_rejected;
      continue;
    }
    if (frames_.subsumed_at(shared.cube, level)) {
      ++stats_.num_exchange_skipped;
      continue;
    }
    // One relative-induction query against OUR frames decides the import:
    // peers run different strategies over different frame sequences, so a
    // shared lemma is a candidate, never a fact.
    Cube core;
    if (solvers_.relative_inductive(shared.cube, level - 1,
                                    /*cube_clause_in_frame=*/false, &core,
                                    deadline)) {
      importing_ = true;
      add_lemma(core, level);
      importing_ = false;
      ++stats_.num_exchange_imported;
    } else {
      ++stats_.num_exchange_rejected;
    }
  }
}

Result Engine::check(Deadline deadline, const CancelToken* cancel) {
  Timer total;
  Result result;
  cancel_ = cancel;
  if (cancel != nullptr) deadline = deadline.with_cancel(*cancel);
  try {
    frames_.ensure_level(0);
    solvers_.ensure_level(0);

    // Step-0 counterexample: a state in I that can raise bad.
    if (solvers_.solve_bad(0, deadline)) {
      const Cube state_full = solvers_.model_state(/*primed=*/false);
      const std::vector<Lit> inputs = solvers_.model_inputs();
      const Cube state = lifter_.lift_bad(state_full, inputs, deadline);
      result.verdict = Verdict::kUnsafe;
      result.trace = Trace{{state}, {inputs}};
    } else if (ts_.num_latches() == 0) {
      // Purely combinational problem: the step-0 query decides it.
      result.verdict = Verdict::kSafe;
      result.invariant = InductiveInvariant{};
    } else {
      std::size_t k = 1;
      frames_.ensure_level(1);
      solvers_.ensure_level(1);
      for (;;) {
        if (cancel_ != nullptr && cancel_->stop_requested()) throw TimeoutError{};
        // ---- blocking phase: make R_k exclude the bad cone ----
        bool unsafe = false;
        {
          obs::PhaseScope block_phase(&stats_.phases, obs::Phase::kBlock);
          while (solvers_.solve_bad(k, deadline)) {
            const Cube state_full = solvers_.model_state(/*primed=*/false);
            const std::vector<Lit> inputs = solvers_.model_inputs();
            const Cube state = lifter_.lift_bad(state_full, inputs, deadline);
            pool_.clear();
            queue_.clear();
            cex_leaf_ = -1;
            pool_.push_back(Obligation{state, k, 0, -1, inputs});
            ++stats_.num_obligations;
            if (!block(0, deadline)) {
              result.verdict = Verdict::kUnsafe;
              result.trace = build_trace(cex_leaf_);
              unsafe = true;
              break;
            }
          }
        }
        if (unsafe) break;

        // ---- propagation phase ----
        ++k;
        frames_.ensure_level(k);
        solvers_.ensure_level(k);
        stats_.max_frame = std::max(stats_.max_frame, k);
        solvers_.maybe_rebuild(frames_);
        import_shared_lemmas(deadline);
        // Frame boundary: refresh the sat_* mirrors so mid-run traces and
        // the heartbeat see live solver counters, not epilogue-only zeros.
        stats_.absorb_sat(solvers_.sat_stats());
        PILOT_TRACE_COUNTER("lemmas", frames_.total_lemmas());
        PILOT_TRACE_COUNTER("sat_conflicts", stats_.sat_conflicts);
        publish_progress();
        if (propagate(deadline)) {
          result.verdict = Verdict::kSafe;
          // Fixpoint level: first i with empty delta (propagate found it).
          for (std::size_t i = 1; i < frames_.top_level(); ++i) {
            if (frames_.delta(i).empty()) {
              result.invariant = collect_invariant(i);
              break;
            }
          }
          break;
        }
        PILOT_INFO("frame " << k << ": lemmas=" << frames_.total_lemmas()
                            << " " << stats_.summary());
      }
    }
  } catch (const TimeoutError&) {
    // Timeout or cancellation: report UNKNOWN with the statistics gathered
    // so far.
    result.verdict = Verdict::kUnknown;
  }
  // Whatever the outcome — verdict, timeout, or cancellation — no
  // proof-obligation state survives the run (pending_obligations() == 0);
  // the trace, if any, was already assembled from the pool.
  pool_.clear();
  queue_.clear();
  cex_leaf_ = -1;
  cancel_ = nullptr;
  result.frames = stats_.max_frame;
  result.seconds = total.seconds();
  stats_.time_total = result.seconds;
  stats_.absorb_sat(solvers_.sat_stats());
  result.stats = stats_;
  return result;
}

bool Engine::block(int root_index, const Deadline& deadline) {
  queue_.insert(QueueKey{pool_[root_index].level, pool_[root_index].depth,
                         root_index});
  while (!queue_.empty()) {
    if (cancel_ != nullptr && cancel_->stop_requested()) throw TimeoutError{};
    const auto it = queue_.begin();
    const int idx = std::get<2>(*it);
    queue_.erase(it);
    publish_progress();
    Obligation& ob = pool_[idx];

    // Already blocked by an existing lemma?
    if (frames_.subsumed_at(ob.cube, ob.level)) {
      if (cfg_.reenqueue_obligations && ob.level < frames_.top_level()) {
        ++ob.level;
        queue_.insert(QueueKey{ob.level, ob.depth, idx});
      }
      continue;
    }

    Cube core;
    if (solvers_.relative_inductive(ob.cube, ob.level - 1,
                                    /*cube_clause_in_frame=*/false, &core,
                                    deadline)) {
      // The cube is blocked; the configured strategy generalizes it (the
      // driver counts N_g and the per-strategy outcome).
      const Cube lemma = generalizer_.generalize(
          ob.cube, core, ob.level, deadline,
          [this](const Cube& c, std::size_t lv) { add_lemma(c, lv); });

      // Push the lemma as high as it proves inductive (paper lines 36-38);
      // on failure hand the CTP successor to the strategy.
      std::size_t j = ob.level;
      while (j < frames_.top_level()) {
        if (!solvers_.relative_inductive(lemma, j,
                                         /*cube_clause_in_frame=*/false,
                                         nullptr, deadline)) {
          if (generalizer_.wants_push_failures()) {
            generalizer_.on_push_failure(
                lemma, j, solvers_.model_state(/*primed=*/true));
          }
          break;
        }
        ++j;
      }
      add_lemma(lemma, j);
      ++stats_.num_blocked_cubes;
      if (cfg_.reenqueue_obligations && j < frames_.top_level()) {
        ob.level = j + 1;
        queue_.insert(QueueKey{ob.level, ob.depth, idx});
      }
    } else {
      // Counterexample to induction: chase the predecessor.
      ++stats_.num_ctis;
      const Cube pred_full = solvers_.model_state(/*primed=*/false);
      const std::vector<Lit> inputs = solvers_.model_inputs();
      // The predecessor satisfies R_{ob.level-1}, exactly the shape the
      // drop-filter caches — donate it before lifting re-solves.
      generalizer_.on_blocking_cti(pred_full, inputs, ob.level);
      const Cube pred =
          lifter_.lift_predecessor(pred_full, inputs, ob.cube, deadline);
      // push_back below may reallocate pool_, invalidating `ob` — snapshot
      // the fields needed afterwards.
      const std::size_t ob_level = ob.level;
      const std::size_t ob_depth = ob.depth;
      pool_.push_back(
          Obligation{pred, ob_level - 1, ob_depth + 1, idx, inputs});
      const int pidx = static_cast<int>(pool_.size()) - 1;
      ++stats_.num_obligations;
      if (ts_.cube_intersects_init(pred.lits())) {
        cex_leaf_ = pidx;
        return false;
      }
      queue_.insert(QueueKey{pool_[pidx].level, pool_[pidx].depth, pidx});
      queue_.insert(QueueKey{ob_level, ob_depth, idx});
    }
  }
  return true;
}

void Engine::publish_progress() {
  if (cfg_.progress == nullptr) return;
  stats_.absorb_sat(solvers_.sat_stats());
  obs::ProgressSnapshot s;
  s.frames = stats_.max_frame;
  s.obligations = stats_.num_obligations;
  s.lemmas = stats_.num_lemmas;
  s.ctis = stats_.num_ctis;
  s.sat_solves = stats_.sat_solve_calls;
  s.sat_conflicts = stats_.sat_conflicts;
  cfg_.progress->publish(s);
}

bool Engine::propagate(const Deadline& deadline) {
  obs::PhaseScope phase(&stats_.phases, obs::Phase::kPropagate);
  Timer t;
  // Propagation boundary: strategies clear their failure tables (paper
  // line 44) and the dynamic meta-strategy evaluates its switching policy.
  generalizer_.on_propagate();
  bool fixpoint = false;
  for (std::size_t i = 1; i < frames_.top_level() && !fixpoint; ++i) {
    const std::vector<Cube> snapshot = frames_.delta(i);
    for (const Cube& c : snapshot) {
      if (cancel_ != nullptr && cancel_->stop_requested()) throw TimeoutError{};
      // The lemma may have been subsumed by a previous push in this pass.
      const auto& bucket = frames_.delta(i);
      if (std::find(bucket.begin(), bucket.end(), c) == bucket.end()) {
        continue;
      }
      ++stats_.num_push_queries;
      if (solvers_.relative_inductive(c, i, /*cube_clause_in_frame=*/true,
                                      nullptr, deadline)) {
        frames_.remove_lemma(c, i);
        if (frames_.add_lemma(c, i + 1)) {
          solvers_.add_lemma_clause(c, i + 1);
          // A push strengthens R_{i+1} (the clause moves up a frame), so
          // frame-dependent strategy caches must hear about it too.
          generalizer_.on_lemma(c, i + 1);
        }
        ++stats_.num_push_successes;
      } else if (generalizer_.wants_push_failures()) {
        // Record the counterexample to propagation (paper lines 49-50).
        generalizer_.on_push_failure(
            c, i, solvers_.model_state(/*primed=*/true));
      }
    }
    if (frames_.delta(i).empty()) fixpoint = true;
  }
  stats_.time_propagate += t.seconds();
  return fixpoint;
}

Trace Engine::build_trace(int leaf_index) const {
  Trace trace;
  for (int idx = leaf_index; idx >= 0; idx = pool_[idx].successor) {
    trace.states.push_back(pool_[idx].cube);
    trace.inputs.push_back(pool_[idx].inputs);
  }
  return trace;
}

InductiveInvariant Engine::collect_invariant(
    std::size_t fixpoint_level) const {
  InductiveInvariant inv;
  for (std::size_t j = fixpoint_level; j <= frames_.top_level(); ++j) {
    for (const Cube& c : frames_.delta(j)) {
      inv.lemma_cubes.push_back(c);
    }
  }
  return inv;
}

}  // namespace pilot::ic3
