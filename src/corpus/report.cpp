#include "corpus/report.hpp"

#include <cstdio>
#include <sstream>

namespace pilot::corpus {

std::vector<EnginePhaseReport> aggregate_phase_report(const ResultsDb& db) {
  std::vector<EnginePhaseReport> out;
  for (const std::string& engine : db.engines()) {
    EnginePhaseReport row;
    row.engine = engine;
    out.push_back(std::move(row));
  }
  for (const RunRow& r : db.rows()) {
    for (EnginePhaseReport& row : out) {
      if (row.engine != r.record.engine) continue;
      ++row.cases;
      if (r.record.solved) ++row.solved;
      row.total_seconds += r.record.seconds;
      row.phases += r.record.stats.phases;
      break;
    }
  }
  return out;
}

std::string render_phase_report(
    const std::vector<EnginePhaseReport>& rows) {
  std::ostringstream out;
  for (const EnginePhaseReport& row : rows) {
    char head[160];
    std::snprintf(head, sizeof(head),
                  "%s: %zu/%zu solved, %.3fs total\n", row.engine.c_str(),
                  row.solved, row.cases, row.total_seconds);
    out << head;
    if (row.phases.empty()) {
      out << "  (no phase data recorded)\n";
    } else {
      // Indent the phase table under the engine heading.
      std::istringstream table(row.phases.table(row.total_seconds));
      std::string line;
      while (std::getline(table, line)) out << "  " << line << "\n";
    }
  }
  if (rows.empty()) out << "no rows\n";
  return out.str();
}

}  // namespace pilot::corpus
