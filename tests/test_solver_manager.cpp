/// SolverManager tests: relative-induction query semantics on small
/// hand-analyzable systems, unsat-core shrinking with initiation repair,
/// model extraction, activation-literal layering, and rebuilds.
#include <gtest/gtest.h>

#include "circuits/families.hpp"
#include "ic3/solver_manager.hpp"
#include "ts/transition_system.hpp"

namespace pilot::ic3 {
namespace {

/// 3-bit counter wrapping at 4 (reachable: 0..3), bad = count == 6.
struct WrapCounterFixture {
  WrapCounterFixture()
      : cc(circuits::counter_wrap_safe(3, 4, 6)),
        ts(ts::TransitionSystem::from_aig(cc.aig)),
        solvers(ts, cfg, stats) {}

  Cube state_cube(std::uint64_t value) {
    std::vector<Lit> lits;
    for (std::size_t i = 0; i < ts.num_latches(); ++i) {
      lits.push_back(Lit::make(ts.state_var(i), ((value >> i) & 1ULL) == 0));
    }
    return Cube::from_lits(std::move(lits));
  }

  circuits::CircuitCase cc;
  ts::TransitionSystem ts;
  Config cfg;
  Ic3Stats stats;
  SolverManager solvers{ts, cfg, stats};
};

TEST(SolverManager, BadReachableFromUnconstrainedFrame) {
  WrapCounterFixture f;
  f.solvers.ensure_level(1);
  // R_1 = ⊤: some state raises bad (count == 6 itself).
  EXPECT_TRUE(f.solvers.solve_bad(1, Deadline{}));
  // R_0 = I = {count = 0}: bad unreachable at step 0.
  EXPECT_FALSE(f.solvers.solve_bad(0, Deadline{}));
}

TEST(SolverManager, RelativeInductiveAtLevelZero) {
  WrapCounterFixture f;
  f.solvers.ensure_level(1);
  // Cube {count=6}: I ∧ ¬c ∧ T cannot reach count=6 in one step
  // (0 steps to 1), so ¬c is inductive relative to R_0.
  Cube core;
  EXPECT_TRUE(f.solvers.relative_inductive(f.state_cube(6), 0,
                                           /*cube_clause_in_frame=*/false,
                                           &core, Deadline{}));
  EXPECT_FALSE(core.empty());
  // Cube {count=1} IS reachable in one step from I: not inductive.
  EXPECT_FALSE(f.solvers.relative_inductive(f.state_cube(1), 0, false,
                                            nullptr, Deadline{}));
}

TEST(SolverManager, CtiModelMatchesTransition) {
  WrapCounterFixture f;
  f.solvers.ensure_level(1);
  // {count=1} fails: the CTI predecessor must be count=0 with successor 1.
  ASSERT_FALSE(f.solvers.relative_inductive(f.state_cube(1), 0, false,
                                            nullptr, Deadline{}));
  const Cube pre = f.solvers.model_state(/*primed=*/false);
  const Cube post = f.solvers.model_state(/*primed=*/true);
  EXPECT_EQ(pre, f.state_cube(0));
  EXPECT_EQ(post, f.state_cube(1));
}

TEST(SolverManager, LemmaClausesRestrictHigherFrames) {
  WrapCounterFixture f;
  f.solvers.ensure_level(2);
  // Block count=6 in R_1 and R_2... adding at level 2 covers queries at
  // levels ≤ 2 (activation act_2 is assumed for queries at 0,1,2).
  f.solvers.add_lemma_clause(f.state_cube(6), 2);
  // Bad (count == 6) is now excluded from R_1 and R_2.
  EXPECT_FALSE(f.solvers.solve_bad(1, Deadline{}));
  EXPECT_FALSE(f.solvers.solve_bad(2, Deadline{}));
}

TEST(SolverManager, CoreShrinkKeepsInitiationRepaired) {
  // System: two latches a (init 0), b (init 0); a' = a, b' = b (frozen).
  // Cube {a=1, b=0}: inductive relative to I (a=1 unreachable).  The core
  // may drop a=1 (b'=0 alone refutes nothing...) — the repair must keep the
  // result disjoint from I = {a=0, b=0}.
  aig::Aig a;
  const aig::AigLit la = a.add_latch(aig::l_False);
  const aig::AigLit lb = a.add_latch(aig::l_False);
  a.set_next(la, la);
  a.set_next(lb, lb);
  a.add_bad(a.make_and(la, !lb));
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(a);
  Config cfg;
  Ic3Stats stats;
  SolverManager solvers(ts, cfg, stats);
  solvers.ensure_level(1);

  const Cube cube = Cube::from_lits(
      {Lit::make(ts.state_var(0)), Lit::make(ts.state_var(1), true)});
  Cube core;
  ASSERT_TRUE(solvers.relative_inductive(cube, 0, false, &core, Deadline{}));
  EXPECT_TRUE(core.subset_of(cube));
  EXPECT_FALSE(ts.cube_intersects_init(core.lits()));
}

TEST(SolverManager, PushQueryUsesFrameClause) {
  WrapCounterFixture f;
  f.solvers.ensure_level(2);
  // Before any lemma: the single-state cube {count=6} is not inductive at
  // level 1 (R_1 = ⊤ contains its predecessor 5).
  EXPECT_FALSE(f.solvers.relative_inductive(f.state_cube(6), 1,
                                            /*cube_clause_in_frame=*/false,
                                            nullptr, Deadline{}));
  // Cube {bit2=1} = counts 4..7.  Its only predecessors (under the wrap-at-4
  // transition) are 4, 5, 6 — all inside the cube itself, so with the
  // cube's clause in R_1 the push query must be UNSAT (inductive).
  const Cube high = Cube::from_lits({Lit::make(f.ts.state_var(2))});
  f.solvers.add_lemma_clause(high, 1);
  EXPECT_TRUE(f.solvers.relative_inductive(high, 1,
                                           /*cube_clause_in_frame=*/true,
                                           nullptr, Deadline{}));
}

TEST(SolverManager, RebuildPreservesSemantics) {
  WrapCounterFixture f;
  Frames frames;
  frames.ensure_level(2);
  const Cube c6 = f.state_cube(6);
  frames.add_lemma(c6, 2);
  f.solvers.ensure_level(2);
  f.solvers.add_lemma_clause(c6, 2);
  ASSERT_FALSE(f.solvers.solve_bad(2, Deadline{}));

  f.solvers.rebuild(frames);
  // Same answers after the rebuild.
  EXPECT_FALSE(f.solvers.solve_bad(2, Deadline{}));
  EXPECT_FALSE(f.solvers.solve_bad(0, Deadline{}));
  EXPECT_GE(f.stats.num_solver_rebuilds, 1u);
}

TEST(SolverManager, ModelInputsComeFromTheInputCone) {
  const circuits::CircuitCase cc = circuits::counter_enable_unsafe(3, 2);
  const ts::TransitionSystem ts = ts::TransitionSystem::from_aig(cc.aig);
  Config cfg;
  Ic3Stats stats;
  SolverManager solvers(ts, cfg, stats);
  solvers.ensure_level(1);
  ASSERT_TRUE(solvers.solve_bad(1, Deadline{}));
  const std::vector<Lit> inputs = solvers.model_inputs();
  EXPECT_EQ(inputs.size(), ts.num_inputs());
  for (const Lit l : inputs) {
    EXPECT_FALSE(ts.is_state_var(l.var()));
  }
}

TEST(SolverManager, TimeoutThrows) {
  WrapCounterFixture f;
  f.solvers.ensure_level(1);
  const Deadline expired = Deadline::in_milliseconds(0);
  while (!expired.expired()) {
  }
  EXPECT_THROW(f.solvers.solve_bad(1, expired), TimeoutError);
}

}  // namespace
}  // namespace pilot::ic3
