#include "aig/aig.hpp"

#include <cassert>
#include <stdexcept>

namespace pilot::aig {

Aig::Aig() {
  nodes_.push_back(Node{});  // node 0: constant false
}

AigLit Aig::add_input(std::string name) {
  const auto node = static_cast<std::uint32_t>(nodes_.size());
  Node n;
  n.type = NodeType::kInput;
  n.name = std::move(name);
  nodes_.push_back(std::move(n));
  inputs_.push_back(node);
  return AigLit::make(node);
}

AigLit Aig::add_latch(LBool init, std::string name) {
  const auto node = static_cast<std::uint32_t>(nodes_.size());
  Node n;
  n.type = NodeType::kLatch;
  n.init_code = init.code();
  n.fanin0 = AigLit::constant(false);
  n.name = std::move(name);
  nodes_.push_back(std::move(n));
  latches_.push_back(node);
  return AigLit::make(node);
}

void Aig::set_next(AigLit latch, AigLit next) {
  if (latch.negated() || !is_latch(latch.node())) {
    throw std::invalid_argument("set_next: not a positive latch literal");
  }
  nodes_[latch.node()].fanin0 = next;
}

void Aig::set_init(AigLit latch, LBool init) {
  if (latch.negated() || !is_latch(latch.node())) {
    throw std::invalid_argument("set_init: not a positive latch literal");
  }
  nodes_[latch.node()].init_code = init.code();
}

AigLit Aig::make_and(AigLit a, AigLit b) {
  // Constant folding and trivial cases.
  if (a.is_false() || b.is_false()) return AigLit::constant(false);
  if (a.is_true()) return b;
  if (b.is_true()) return a;
  if (a == b) return a;
  if (a == !b) return AigLit::constant(false);
  // Canonical order: smaller code first.
  if (a.code() > b.code()) std::swap(a, b);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(a.code()) << 32) | b.code();
  if (const auto it = strash_.find(key); it != strash_.end()) {
    return AigLit::make(it->second);
  }
  const auto node = static_cast<std::uint32_t>(nodes_.size());
  Node n;
  n.type = NodeType::kAnd;
  n.fanin0 = a;
  n.fanin1 = b;
  nodes_.push_back(std::move(n));
  ands_.push_back(node);
  strash_.emplace(key, node);
  return AigLit::make(node);
}

AigLit Aig::make_and_n(std::span<const AigLit> lits) {
  if (lits.empty()) return AigLit::constant(true);
  // Balanced reduction keeps the tree shallow for wide conjunctions.
  std::vector<AigLit> layer(lits.begin(), lits.end());
  while (layer.size() > 1) {
    std::vector<AigLit> next_layer;
    next_layer.reserve((layer.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next_layer.push_back(make_and(layer[i], layer[i + 1]));
    }
    if (layer.size() % 2 == 1) next_layer.push_back(layer.back());
    layer = std::move(next_layer);
  }
  return layer[0];
}

AigLit Aig::make_or_n(std::span<const AigLit> lits) {
  std::vector<AigLit> inverted;
  inverted.reserve(lits.size());
  for (const AigLit l : lits) inverted.push_back(!l);
  return !make_and_n(inverted);
}

AigLit map_lit(AigLit lit, const LitMap& lit_map) {
  const AigLit mapped = lit_map[lit.node()];
  assert(mapped != kInvalidLit && "literal outside the extracted cone");
  return mapped ^ lit.negated();
}

Aig extract_coi(const Aig& aig, std::span<const AigLit> roots,
                LitMap* lit_map) {
  std::vector<char> keep(aig.num_nodes(), 0);
  std::vector<std::uint32_t> stack;
  keep[0] = 1;
  auto visit = [&](AigLit l) {
    if (!keep[l.node()]) {
      keep[l.node()] = 1;
      stack.push_back(l.node());
    }
  };
  for (const AigLit r : roots) visit(r);
  while (!stack.empty()) {
    const std::uint32_t node = stack.back();
    stack.pop_back();
    switch (aig.type(node)) {
      case NodeType::kAnd:
        visit(aig.fanin0(node));
        visit(aig.fanin1(node));
        break;
      case NodeType::kLatch:
        visit(aig.next(node));
        break;
      default:
        break;
    }
  }

  Aig out;
  LitMap map(aig.num_nodes(), kInvalidLit);
  map[0] = AigLit::constant(false);
  // Create kept inputs and latches first (AIGER-style ordering), then the
  // AND gates in the original topological order.
  for (const std::uint32_t node : aig.inputs()) {
    if (keep[node]) map[node] = out.add_input(aig.name(node));
  }
  for (const std::uint32_t node : aig.latches()) {
    if (keep[node]) {
      map[node] = out.add_latch(aig.init(node), aig.name(node));
    }
  }
  for (const std::uint32_t node : aig.ands()) {
    if (!keep[node]) continue;
    const AigLit a = map_lit(aig.fanin0(node), map);
    const AigLit b = map_lit(aig.fanin1(node), map);
    // Structural hashing (or folding) may merge gates; record wherever the
    // gate landed, including a possible inversion.
    map[node] = out.make_and(a, b);
  }
  for (const std::uint32_t node : aig.latches()) {
    if (keep[node]) {
      out.set_next(map[node], map_lit(aig.next(node), map));
    }
  }
  if (lit_map != nullptr) *lit_map = std::move(map);
  return out;
}

namespace {

// Local FNV-1a so the AIG layer does not depend on the corpus subsystem
// (corpus::fnv1a_hex hashes raw file bytes; this hashes parsed structure).
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_byte(std::uint64_t& h, std::uint8_t byte) {
  h = (h ^ byte) * kFnvPrime;
}

void fnv_u64(std::uint64_t& h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) fnv_byte(h, (value >> (8 * i)) & 0xFF);
}

}  // namespace

std::uint64_t canonical_hash(const Aig& aig) {
  std::uint64_t h = kFnvOffset;
  // Section tags keep e.g. "two inputs" distinct from "one input, one latch"
  // even when the literal codes line up.
  fnv_byte(h, 'I');
  fnv_u64(h, aig.num_inputs());
  fnv_byte(h, 'L');
  fnv_u64(h, aig.num_latches());
  for (const std::uint32_t node : aig.latches()) {
    fnv_byte(h, static_cast<std::uint8_t>(aig.init(node).code()));
    fnv_u64(h, aig.next(node).code());
  }
  fnv_byte(h, 'A');
  fnv_u64(h, aig.num_ands());
  for (const std::uint32_t node : aig.ands()) {
    fnv_u64(h, aig.fanin0(node).code());
    fnv_u64(h, aig.fanin1(node).code());
  }
  fnv_byte(h, 'O');
  fnv_u64(h, aig.outputs().size());
  for (const AigLit lit : aig.outputs()) fnv_u64(h, lit.code());
  fnv_byte(h, 'B');
  fnv_u64(h, aig.bads().size());
  for (const AigLit lit : aig.bads()) fnv_u64(h, lit.code());
  fnv_byte(h, 'C');
  fnv_u64(h, aig.constraints().size());
  for (const AigLit lit : aig.constraints()) fnv_u64(h, lit.code());
  return h;
}

std::string canonical_hash_hex(const Aig& aig) {
  static const char* digits = "0123456789abcdef";
  const std::uint64_t h = canonical_hash(aig);
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = digits[(h >> (4 * i)) & 0xF];
  }
  return out;
}

}  // namespace pilot::aig
