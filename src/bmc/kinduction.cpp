#include "bmc/kinduction.hpp"

#include "bmc/bmc.hpp"
#include "sat/solver.hpp"
#include "ts/unroller.hpp"

namespace pilot::bmc {
namespace {

/// Adds "state at frame a != state at frame b" to the step solver:
///   diff_ab = OR_i (x_i^a XOR x_i^b), asserted as a unit.
void add_state_disequality(sat::Solver& solver, const ts::Unroller& unroller,
                           const ts::TransitionSystem& ts, int a, int b) {
  std::vector<sat::Lit> diff_bits;
  for (std::size_t i = 0; i < ts.num_latches(); ++i) {
    const sat::Lit xa = sat::Lit::make(unroller.state_var(i, a));
    const sat::Lit xb = sat::Lit::make(unroller.state_var(i, b));
    const sat::Lit d = sat::Lit::make(solver.new_var());
    // d ↔ xa XOR xb  (only the → direction is needed for disequality, but
    // both keep the encoding tight).
    solver.add_ternary(~d, xa, xb);
    solver.add_ternary(~d, ~xa, ~xb);
    solver.add_ternary(d, ~xa, xb);
    solver.add_ternary(d, xa, ~xb);
    diff_bits.push_back(d);
  }
  if (diff_bits.empty()) {
    // No latches: states are trivially equal; force UNSAT of the path.
    solver.add_clause(std::vector<sat::Lit>{});
    return;
  }
  solver.add_clause(diff_bits);
}

/// Cap on failed-literal probes per newly unrolled frame (the solver's
/// watermark already restricts each call to variables new since the last).
constexpr std::size_t kProbesPerFrame = 4096;

}  // namespace

KindResult run_kinduction(const ts::TransitionSystem& ts,
                          const KindOptions& options, pilot::Deadline deadline,
                          const pilot::CancelToken* cancel) {
  Timer timer;
  KindResult result;
  if (cancel != nullptr) deadline = deadline.with_cancel(*cancel);

  sat::Solver base_solver;
  base_solver.set_seed(options.seed);
  ts::Unroller base(ts, base_solver, /*assert_init=*/true);

  sat::Solver step_solver;
  step_solver.set_seed(options.seed);
  ts::Unroller step(ts, step_solver, /*assert_init=*/false);

  const auto finish = [&](KindResult& r) -> KindResult& {
    r.seconds = timer.seconds();
    r.sat_stats = base_solver.stats();
    r.sat_stats += step_solver.stats();
    return r;
  };

  for (int k = 0; k <= options.max_k; ++k) {
    if (deadline.expired()) {
      return finish(result);
    }
    // Base case: counterexample of length k?
    {
      obs::PhaseScope phase(&result.phases, obs::Phase::kUnroll);
      base.extend_to(k);
    }
    if (options.inprocess) {
      // One SCC sweep the first time a transition step is present (k == 1
      // for the init-anchored base unrolling); probing is watermarked to
      // the frame's new variables.  See the matching hook in run_bmc.
      obs::PhaseScope phase(&result.phases, obs::Phase::kSatInprocess);
      base_solver.probe_and_collapse(/*collapse_scc=*/k == 1,
                                     kProbesPerFrame);
    }
    if (options.progress != nullptr) {
      obs::ProgressSnapshot s;
      s.frames = static_cast<std::uint64_t>(k);
      sat::SolverStats combined = base_solver.stats();
      combined += step_solver.stats();
      s.sat_solves = combined.solve_calls;
      s.sat_conflicts = combined.conflicts;
      options.progress->publish(s);
    }
    {
      obs::PhaseScope phase(&result.phases, obs::Phase::kSatSolve);
      const std::vector<sat::Lit> assumptions{base.bad(k)};
      const sat::SolveResult res = base_solver.solve(assumptions, deadline);
      if (res == sat::SolveResult::kUnknown) break;
      if (res == sat::SolveResult::kSat) {
        result.verdict = KindVerdict::kUnsafe;
        result.k = k;
        result.trace = extract_unrolled_trace(base_solver, base, ts, k);
        return finish(result);
      }
    }
    // Step case: ¬bad at frames 0..k, bad at frame k+1, all states distinct.
    {
      obs::PhaseScope phase(&result.phases, obs::Phase::kUnroll);
      step.extend_to(k + 1);
      step_solver.add_unit(~step.bad(k));  // frames 0..k stay good
      if (options.simple_path) {
        for (int prev = 0; prev < k + 1; ++prev) {
          add_state_disequality(step_solver, step, ts, prev, k + 1);
        }
      }
    }
    if (options.inprocess) {
      // The step unrolling has a transition at k == 0 already (frames 0→1);
      // its SCC sweep therefore runs on the first bound.  Probing also
      // covers the freshly added simple-path difference variables.
      obs::PhaseScope phase(&result.phases, obs::Phase::kSatInprocess);
      step_solver.probe_and_collapse(/*collapse_scc=*/k == 0,
                                     kProbesPerFrame);
    }
    {
      obs::PhaseScope phase(&result.phases, obs::Phase::kSatSolve);
      const std::vector<sat::Lit> assumptions{step.bad(k + 1)};
      const sat::SolveResult res = step_solver.solve(assumptions, deadline);
      if (res == sat::SolveResult::kUnknown) break;
      if (res == sat::SolveResult::kUnsat) {
        result.verdict = KindVerdict::kSafe;
        result.k = k;
        return finish(result);
      }
    }
  }
  if (result.verdict == KindVerdict::kUnknown && !deadline.expired()) {
    result.verdict = KindVerdict::kBoundReached;
    result.k = options.max_k;
  }
  return finish(result);
}

}  // namespace pilot::bmc
