/// \file aig.hpp
/// And-Inverter Graph: the circuit representation used throughout pilot.
///
/// An AIG is a DAG of two-input AND gates with optional inversion on every
/// edge, plus primary inputs and latches (registers).  This mirrors the
/// AIGER exchange format used by the hardware model checking competitions
/// (HWMCC), which is the front-end format of the paper's evaluation.
///
/// Construction goes through `make_and`, which performs constant folding
/// and structural hashing so equivalent gates are shared.  Nodes are created
/// in topological order by construction, which the CNF encoder and the
/// simulator rely on.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "sat/types.hpp"  // reuses LBool for latch reset values

namespace pilot::aig {

using sat::LBool;
using sat::l_False;
using sat::l_True;
using sat::l_Undef;

/// An AIG literal: node index plus optional inversion.
/// Code 0 is constant false, code 1 constant true.
class AigLit {
 public:
  constexpr AigLit() = default;

  static constexpr AigLit make(std::uint32_t node, bool negated = false) {
    AigLit l;
    l.code_ = (node << 1) | (negated ? 1u : 0u);
    return l;
  }
  static constexpr AigLit from_code(std::uint32_t code) {
    AigLit l;
    l.code_ = code;
    return l;
  }
  static constexpr AigLit constant(bool value) {
    return from_code(value ? 1u : 0u);
  }

  [[nodiscard]] constexpr std::uint32_t node() const { return code_ >> 1; }
  [[nodiscard]] constexpr bool negated() const { return (code_ & 1u) != 0; }
  [[nodiscard]] constexpr std::uint32_t code() const { return code_; }

  [[nodiscard]] constexpr bool is_const() const { return node() == 0; }
  [[nodiscard]] constexpr bool is_false() const { return code_ == 0; }
  [[nodiscard]] constexpr bool is_true() const { return code_ == 1; }

  constexpr AigLit operator!() const { return from_code(code_ ^ 1u); }
  /// Applies an extra inversion when `flip` holds.
  constexpr AigLit operator^(bool flip) const {
    return from_code(code_ ^ (flip ? 1u : 0u));
  }

  constexpr auto operator<=>(const AigLit&) const = default;

 private:
  std::uint32_t code_ = 0;
};

enum class NodeType : std::uint8_t { kConst, kInput, kLatch, kAnd };

/// Mutable AIG with structural hashing.
class Aig {
 public:
  Aig();

  // ----- construction ----------------------------------------------------

  /// Creates a new primary input; returns its (positive) literal.
  AigLit add_input(std::string name = {});

  /// Creates a new latch with reset value `init` (l_Undef = uninitialized).
  /// The next-state function must be set later via set_next().
  AigLit add_latch(LBool init = l_False, std::string name = {});

  /// Sets the next-state function of `latch` (positive latch literal).
  void set_next(AigLit latch, AigLit next);
  void set_init(AigLit latch, LBool init);

  /// AND gate with constant folding and structural hashing.
  AigLit make_and(AigLit a, AigLit b);

  // Derived connectives (all reduce to make_and).
  AigLit make_or(AigLit a, AigLit b) { return !make_and(!a, !b); }
  AigLit make_xor(AigLit a, AigLit b) {
    return make_or(make_and(a, !b), make_and(!a, b));
  }
  AigLit make_eq(AigLit a, AigLit b) { return !make_xor(a, b); }
  /// Multiplexer: sel ? t : e.
  AigLit make_mux(AigLit sel, AigLit t, AigLit e) {
    return make_or(make_and(sel, t), make_and(!sel, e));
  }
  /// Conjunction over a span of literals (balanced tree).
  AigLit make_and_n(std::span<const AigLit> lits);
  AigLit make_or_n(std::span<const AigLit> lits);

  void add_output(AigLit lit) { outputs_.push_back(lit); }
  void add_bad(AigLit lit) { bads_.push_back(lit); }
  void add_constraint(AigLit lit) { constraints_.push_back(lit); }

  // ----- accessors ---------------------------------------------------------

  /// Total node count including the constant node 0.
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_inputs() const { return inputs_.size(); }
  [[nodiscard]] std::size_t num_latches() const { return latches_.size(); }
  [[nodiscard]] std::size_t num_ands() const { return ands_.size(); }

  [[nodiscard]] NodeType type(std::uint32_t node) const {
    return nodes_[node].type;
  }
  [[nodiscard]] bool is_latch(std::uint32_t node) const {
    return type(node) == NodeType::kLatch;
  }
  [[nodiscard]] bool is_input(std::uint32_t node) const {
    return type(node) == NodeType::kInput;
  }
  [[nodiscard]] bool is_and(std::uint32_t node) const {
    return type(node) == NodeType::kAnd;
  }

  /// Next-state function of a latch node.
  [[nodiscard]] AigLit next(std::uint32_t latch_node) const {
    return nodes_[latch_node].fanin0;
  }
  /// Reset value of a latch node.
  [[nodiscard]] LBool init(std::uint32_t latch_node) const {
    return LBool(nodes_[latch_node].init_code);
  }
  [[nodiscard]] AigLit fanin0(std::uint32_t and_node) const {
    return nodes_[and_node].fanin0;
  }
  [[nodiscard]] AigLit fanin1(std::uint32_t and_node) const {
    return nodes_[and_node].fanin1;
  }

  /// Node lists in creation (= topological) order.
  [[nodiscard]] const std::vector<std::uint32_t>& inputs() const {
    return inputs_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& latches() const {
    return latches_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& ands() const {
    return ands_;
  }
  [[nodiscard]] const std::vector<AigLit>& outputs() const { return outputs_; }
  [[nodiscard]] const std::vector<AigLit>& bads() const { return bads_; }
  [[nodiscard]] const std::vector<AigLit>& constraints() const {
    return constraints_;
  }

  [[nodiscard]] const std::string& name(std::uint32_t node) const {
    return nodes_[node].name;
  }
  void set_name(std::uint32_t node, std::string name) {
    nodes_[node].name = std::move(name);
  }

 private:
  struct Node {
    NodeType type = NodeType::kConst;
    std::uint8_t init_code = l_False.code();  // latches only
    AigLit fanin0;  // AND: left fanin; latch: next-state function
    AigLit fanin1;  // AND: right fanin
    std::string name;
  };

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> inputs_;
  std::vector<std::uint32_t> latches_;
  std::vector<std::uint32_t> ands_;
  std::vector<AigLit> outputs_;
  std::vector<AigLit> bads_;
  std::vector<AigLit> constraints_;
  std::unordered_map<std::uint64_t, std::uint32_t> strash_;
};

/// Old-node → new-literal translation table produced by extract_coi.
/// Entry n is the literal in the new AIG replacing the *positive* literal of
/// old node n (folding may introduce an inversion); kInvalidLit for dropped
/// nodes.
using LitMap = std::vector<AigLit>;
inline constexpr AigLit kInvalidLit = AigLit::from_code(0xFFFFFFFFu);

/// Translates a literal through a map produced by extract_coi.
AigLit map_lit(AigLit lit, const LitMap& lit_map);

/// FNV-1a hash of the canonical circuit structure: input/latch/and counts,
/// per-latch reset + next-state literal codes, per-gate fanin codes, and the
/// output/bad/constraint literal codes — in creation (= topological) order.
/// Symbol names and comments are excluded, so two AIGER files that differ
/// only in whitespace, comments, or symbol tables hash identically once
/// parsed, while any structural edit (one gate, one literal) changes the
/// hash.  This is the verdict-cache key; the raw-byte `corpus::fnv1a_hex`
/// stays the parse-cache key.
std::uint64_t canonical_hash(const Aig& aig);

/// canonical_hash rendered as 16 lowercase hex digits (matches the
/// corpus content-hash format).
std::string canonical_hash_hex(const Aig& aig);

/// Extracts the cone of influence of `roots`: the sub-AIG containing every
/// node that can reach a root (through combinational fanin or latch
/// next-state functions).  Outputs/bads/constraints are NOT copied; callers
/// re-attach the roots they care about via map_lit.
Aig extract_coi(const Aig& aig, std::span<const AigLit> roots,
                LitMap* lit_map = nullptr);

}  // namespace pilot::aig
