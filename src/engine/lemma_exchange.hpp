/// \file lemma_exchange.hpp
/// The portfolio lemma-exchange hub: a lock-guarded shared store where
/// racing backends publish generalized lemmas and poll what their peers
/// found.
///
/// Design: an append-only store with one read cursor per peer.  publish()
/// appends (cube, level, source) after an exact-cube dedup; poll(peer)
/// returns every entry past the peer's cursor that the peer did not itself
/// publish, and advances the cursor — each lemma crosses the bus to each
/// peer at most once.  The store is capped so a lemma-heavy backend cannot
/// grow it without bound; past the cap publishes are counted and dropped.
///
/// Thread-safety: every public method takes the one internal mutex; cubes
/// are copied in and out under it.  Peers are registered before the race
/// starts (add_peer is not thread-safe against publish/poll — the
/// scheduler calls it while still single-threaded).
///
/// Soundness: the hub is transport only.  An importing engine must
/// validate every polled lemma against its own frame sequence (one
/// relative-induction query + initiation check — see
/// ic3::Engine::import_shared_lemmas) before installing it, because peers
/// run different strategies over different frame sequences.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "ic3/cube.hpp"
#include "ic3/lemma_bus.hpp"

namespace pilot::engine {

/// Hub-level counters (per-backend import/reject counters live in each
/// backend's Ic3Stats).
struct LemmaExchangeStats {
  std::uint64_t published = 0;        // entries appended to the store
  std::uint64_t deduped = 0;          // publishes dropped as exact duplicates
  std::uint64_t dropped_capacity = 0; // publishes dropped at the store cap
  std::uint64_t delivered = 0;        // entries handed out across all polls
};

class LemmaExchange {
 public:
  /// `max_store` caps the shared store (entries, deduped).
  explicit LemmaExchange(std::size_t max_store = 65536)
      : max_store_(max_store) {}

  LemmaExchange(const LemmaExchange&) = delete;
  LemmaExchange& operator=(const LemmaExchange&) = delete;

  /// Registers a peer; returns its id.  Call before the race starts.
  [[nodiscard]] std::size_t add_peer();

  void publish(std::size_t peer, const ic3::Cube& cube, std::size_t level);
  [[nodiscard]] std::vector<ic3::SharedLemma> poll(std::size_t peer);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] LemmaExchangeStats stats() const;

 private:
  struct Entry {
    ic3::Cube cube;
    std::size_t level;
    std::size_t source;
  };

  const std::size_t max_store_;
  mutable std::mutex mutex_;
  std::vector<Entry> store_;
  std::unordered_set<ic3::Cube, ic3::CubeHash> seen_;
  std::vector<std::size_t> cursors_;  // per peer, index into store_
  LemmaExchangeStats stats_;
};

/// One backend's endpoint: an ic3::LemmaBus bound to (hub, peer id).  The
/// scheduler owns one per IC3-family backend and keeps it alive for the
/// duration of the race.
class PeerBus final : public ic3::LemmaBus {
 public:
  PeerBus(LemmaExchange& hub, std::size_t peer) : hub_(hub), peer_(peer) {}

  void publish(const ic3::Cube& cube, std::size_t level) override {
    hub_.publish(peer_, cube, level);
  }

  [[nodiscard]] std::vector<ic3::SharedLemma> poll() override {
    return hub_.poll(peer_);
  }

 private:
  LemmaExchange& hub_;
  const std::size_t peer_;
};

}  // namespace pilot::engine
