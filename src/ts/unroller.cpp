#include "ts/unroller.hpp"

#include <stdexcept>

namespace pilot::ts {

Unroller::Unroller(const TransitionSystem& ts, sat::Solver& solver,
                   bool assert_init)
    : ts_(ts), solver_(solver), assert_init_(assert_init),
      bad_template_(ts.bad()) {
  if (solver.num_vars() != 0) {
    throw std::logic_error("unroller: solver must be fresh");
  }
  encode_frame();  // frame 0
  if (assert_init_) {
    for (const Lit l : ts_.init_literals()) {
      solver_.add_unit(Lit::make(frame_base_[0] + l.var(), l.sign()));
    }
  }
}

void Unroller::extend_to(int k) {
  while (max_frame() < k) encode_frame();
}

void Unroller::encode_frame() {
  const Aig& aig = ts_.aig();
  const auto frame = static_cast<int>(frame_base_.size());
  const Var base = static_cast<Var>(solver_.num_vars());
  frame_base_.push_back(base);
  for (std::size_t i = 0; i < aig.num_nodes(); ++i) solver_.new_var();

  auto at = [&](AigLit l) {
    return Lit::make(base + static_cast<Var>(l.node()), l.negated());
  };

  // Assert the literal that represents constant true (node 0 is the
  // constant-false node, so its negation must hold).
  solver_.add_unit(at(AigLit::constant(true)));
  for (const std::uint32_t n : aig.ands()) {
    const Lit g = Lit::make(base + static_cast<Var>(n));
    const Lit a = at(aig.fanin0(n));
    const Lit b = at(aig.fanin1(n));
    solver_.add_binary(~g, a);
    solver_.add_binary(~g, b);
    solver_.add_ternary(g, ~a, ~b);
  }
  for (const AigLit c : aig.constraints()) solver_.add_unit(at(c));

  if (frame > 0) {
    // Tie this frame's latches to the previous frame's next-state functions.
    const Var prev_base = frame_base_[frame - 1];
    for (const std::uint32_t latch : aig.latches()) {
      const Lit now = Lit::make(base + static_cast<Var>(latch));
      const Lit fn = Lit::make(
          prev_base + static_cast<Var>(aig.next(latch).node()),
          aig.next(latch).negated());
      solver_.add_binary(~now, fn);
      solver_.add_binary(now, ~fn);
    }
  }
}

}  // namespace pilot::ts
