/// \file advisor.hpp
/// History-driven engine/budget advice: the second tier of the serving
/// layer ("pilot-serve").
///
/// On a verdict-cache miss, the recorded-run corpus is still a prediction
/// asset (LeGend's observation): the engine and budget that solved the
/// nearest prior instance are a far better opening move than burning the
/// full portfolio budget from scratch.  The advisor indexes a ResultsDb's
/// *solved* rows and answers in two tiers:
///
///   1. exact canonical-hash match — the same circuit solved before (maybe
///      under another name): replay its engine with ~1.5× the time that
///      solved it;
///   2. nearest neighbour by feature distance — L2 over log1p(inputs,
///      latches, ands), the shape features every row now records.
///
/// The advice is an *opening bid*, not a verdict: callers run the advised
/// engine under the advised budget and fall back to their full engine spec
/// and budget when it returns UNKNOWN.  Soundness is unaffected either way
/// — whatever engine answers, its verdict is certified like any other.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace pilot::corpus {
class ResultsDb;
}

namespace pilot::serve {

/// One recommendation: which engine to try first and for how long.
struct Advice {
  std::string engine_spec;
  std::int64_t budget_ms = 0;
  /// True when keyed by an exact canonical-hash match (tier 1).
  bool exact = false;
  /// Provenance: the neighbouring case and its feature distance
  /// (0 for exact matches).
  std::string source_case;
  double distance = 0.0;
};

class Advisor {
 public:
  Advisor() = default;

  /// Indexes every solved row of `db` that carries a nonzero feature
  /// vector.  Rows without a canonical hash still contribute to the
  /// nearest-neighbour tier.
  static Advisor from_db(const corpus::ResultsDb& db);
  /// Convenience: ResultsDb::load + from_db.
  static Advisor from_file(const std::string& path);

  /// Advice for a circuit with canonical hash `hash` (may be empty) and
  /// the given feature counts.  nullopt when no history matches.
  [[nodiscard]] std::optional<Advice> advise(const std::string& hash,
                                             std::size_t num_inputs,
                                             std::size_t num_latches,
                                             std::size_t num_ands) const;

  [[nodiscard]] std::size_t size() const { return rows_.size(); }

  /// The budget multiplier applied to a neighbour's solve time (~1.5×),
  /// with a floor so microsecond-fast neighbours still get a workable
  /// opening budget.
  static std::int64_t scaled_budget_ms(double neighbour_seconds);

 private:
  struct HistoryRow {
    std::string hash;
    std::string case_name;
    std::string engine;
    double seconds = 0.0;
    double features[3] = {0.0, 0.0, 0.0};  // log1p(inputs, latches, ands)
  };

  std::vector<HistoryRow> rows_;
  /// hash → index of the *fastest* solved row with that hash.
  std::unordered_map<std::string, std::size_t> by_hash_;
};

}  // namespace pilot::serve
