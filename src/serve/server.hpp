/// \file server.hpp
/// `pilot serve`: the long-running Unix-socket front door of the serving
/// layer — tier 3 of "pilot-serve".
///
/// A stream socket accepts one request per connection, line-oriented:
///
///   ping\n                 → "ok pong\n"
///   stats\n                → "ok entries=… hits=… misses=… …\n"
///   stop\n                 → "ok draining\n"  (graceful drain, see below)
///   check <nbytes>\n<AIGER> → "ok verdict=… cached=0|1 engine=… seconds=… hash=…\n"
///                             or "error <message>\n"
///
/// Accepted connections flow through a *bounded* queue into a worker pool;
/// when the queue is full the connection is answered "error queue full"
/// immediately instead of piling up unbounded memory — backpressure is the
/// client's signal to retry.  Each job runs the same cache → advisor →
/// engine pipeline as the batch runner (literally: a one-case run_matrix
/// call with the shared VerdictCache/Advisor attached), so a served verdict
/// is certified and cached exactly like a campaign verdict.
///
/// Graceful drain: SIGTERM (wired by the CLI via request_stop()) or a
/// client "stop" command closes the listening socket, lets the workers
/// finish every queued job, then exits — no accepted request is dropped.
///
/// POSIX-only (AF_UNIX); on other platforms start() fails with an error.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/advisor.hpp"
#include "serve/verdict_cache.hpp"

namespace pilot::serve {

struct ServerOptions {
  /// Filesystem path of the Unix socket; created on start(), unlinked on
  /// drain.  A stale file from a crashed server is replaced.
  std::string socket_path;
  /// Engine spec jobs run under on a cache miss (advisor may open with a
  /// different one first).
  std::string engine_spec = "portfolio";
  std::int64_t budget_ms = 10000;
  std::uint64_t seed = 0;
  /// Bounded-queue capacity; a full queue answers "error queue full".
  std::size_t queue_capacity = 64;
  /// Worker threads; 0 = hardware concurrency.
  std::size_t workers = 0;
  /// Shared cache/advisor (non-owning, nullable).
  VerdictCache* cache = nullptr;
  const Advisor* advisor = nullptr;
};

struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t served = 0;
  std::uint64_t errors = 0;
  std::uint64_t rejected_queue_full = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and spawns the accept loop + worker pool.  Returns
  /// false (with `error` set) on bind/listen failure or a bad engine spec.
  bool start(std::string* error);

  /// Begins a graceful drain: stop accepting, finish queued jobs.  Safe to
  /// call from any thread, and — being async-signal-unsafe-free aside from
  /// a flag store — from the CLI's SIGTERM trampoline via a polled flag.
  void request_stop();

  /// Joins every thread; returns once the drain completes.
  void wait();

  [[nodiscard]] bool draining() const;
  [[nodiscard]] ServerStats stats() const;

 private:
  void accept_loop();
  void worker_loop();
  void handle_connection(int fd);

  ServerOptions options_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;  // accepted connection fds awaiting a worker
  bool stop_ = false;
  ServerStats stats_;
};

/// Blocking client helper (tests, `pilot submit`): connects to
/// `socket_path`, sends `request` verbatim, returns the full response or
/// nullopt with `error` set.
[[nodiscard]] std::optional<std::string> client_request(
    const std::string& socket_path, const std::string& request,
    std::string* error);

/// Convenience: frames `aiger_text` as a "check" request.
[[nodiscard]] std::string make_check_request(const std::string& aiger_text);

}  // namespace pilot::serve
