/// \file runner.hpp
/// Batch experiment runner: (benchmark case × engine configuration) matrix
/// with per-case wall-clock budgets, optional thread-level parallelism, and
/// a hard soundness gate (a solved verdict that contradicts the case's
/// known construction aborts the run).
///
/// The bench harness binaries (Table 1/2, Figures 2/3/4) are thin
/// aggregations over the RunRecord rows this produces.
#pragma once

#include <string>
#include <vector>

#include "check/checker.hpp"
#include "circuits/suite.hpp"

namespace pilot::check {

struct RunRecord {
  std::string case_name;
  std::string family;
  EngineKind engine = EngineKind::kIc3Ctg;
  bool expected_safe = false;
  ic3::Verdict verdict = ic3::Verdict::kUnknown;
  bool solved = false;
  double seconds = 0.0;
  std::size_t frames = 0;
  ic3::Ic3Stats stats;
};

struct RunMatrixOptions {
  std::int64_t budget_ms = 2000;
  std::uint64_t seed = 0;
  /// Worker threads; 0 = hardware concurrency.
  std::size_t jobs = 0;
  bool verify_witness = true;
  /// Abort on verdict/expectation mismatch (soundness gate).
  bool strict = true;
};

/// Runs every (case, engine) pair and returns one record per pair,
/// in deterministic (case-major) order.
std::vector<RunRecord> run_matrix(const std::vector<circuits::CircuitCase>& cases,
                                  const std::vector<EngineKind>& engines,
                                  const RunMatrixOptions& options);

}  // namespace pilot::check
